"""Unit tests for the expert autopilot and the model pilot."""

import numpy as np
import pytest

from repro.nn import make_driving_model
from repro.sim.autopilot import CRUISE_SPEED, ExpertAutopilot, ModelPilot
from repro.sim.kinematics import VehicleState, advance
from repro.sim.router import RoutePlan


def straight_plan(length=300.0):
    return RoutePlan(np.array([[0.0, 0.0], [length, 0.0]]))


def drive(pilot, state, steps, dt=0.1, obstacles=None):
    obstacles = obstacles if obstacles is not None else np.zeros((0, 2))
    for _ in range(steps):
        turn_rate, accel = pilot.control(state, obstacles, dt=dt)
        state = advance(state, turn_rate, accel, dt)
    return state


class TestExpertAutopilot:
    def test_accelerates_to_cruise_on_open_road(self):
        plan = straight_plan()
        pilot = ExpertAutopilot(plan, lane_offset=0.0)
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        state = drive(pilot, state, 100)
        assert state.speed > 0.7 * CRUISE_SPEED

    def test_tracks_lane_offset(self):
        plan = straight_plan()
        pilot = ExpertAutopilot(plan, lane_offset=2.0)
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        state = drive(pilot, state, 150)
        # Heading +x: right-hand lane is y = -2.
        assert state.y == pytest.approx(-2.0, abs=0.8)

    def test_stops_for_obstacle_ahead(self):
        plan = straight_plan()
        pilot = ExpertAutopilot(plan, lane_offset=0.0)
        state = VehicleState(0.0, 0.0, 0.0, 8.0)
        blocker = np.array([[18.0, 0.0]])
        for _ in range(60):
            turn_rate, accel = pilot.control(state, blocker, dt=0.1)
            state = advance(state, turn_rate, accel, 0.1)
        assert state.speed < 1.0
        assert state.x < 15.0  # stopped short of the obstacle

    def test_ignores_obstacle_behind(self):
        plan = straight_plan()
        pilot = ExpertAutopilot(plan, lane_offset=0.0)
        state = VehicleState(50.0, 0.0, 0.0, 0.0)
        behind = np.array([[40.0, 0.0]])
        state = drive(pilot, state, 80, obstacles=behind)
        assert state.speed > 3.0

    def test_ignores_lateral_obstacle(self):
        plan = straight_plan()
        pilot = ExpertAutopilot(plan, lane_offset=0.0)
        state = VehicleState(0.0, 0.0, 0.0, 5.0)
        sideways = np.array([[10.0, 12.0]])
        state = drive(pilot, state, 80, obstacles=sideways)
        assert state.speed > 3.0

    def test_progress_and_done(self):
        plan = straight_plan(120.0)
        pilot = ExpertAutopilot(plan, lane_offset=0.0)
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        state = drive(pilot, state, 300)
        assert pilot.done()

    def test_creep_engages_after_long_block(self):
        plan = straight_plan()
        pilot = ExpertAutopilot(plan, lane_offset=0.0)
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        # Blocker slightly off-center ahead, forever.
        blocker = np.array([[6.0, 1.5]])
        for _ in range(200):
            turn_rate, accel = pilot.control(state, blocker, dt=0.1)
            state = advance(state, turn_rate, accel, 0.1)
        # After the stopped-time threshold the pilot creeps past.
        assert state.x > 2.0


class TestModelPilot:
    def _pilot(self, plan):
        model = make_driving_model((3, 8, 8), 4, 16, seed=0)
        bev = np.zeros((3, 8, 8), dtype=np.float32)
        return ModelPilot(model, plan, bev_fn=lambda state, p: bev)

    def test_queries_model_at_decision_interval(self):
        plan = straight_plan()
        calls = []
        model = make_driving_model((3, 8, 8), 4, 16, seed=0)

        def bev_fn(state, p):
            calls.append(state)
            return np.zeros((3, 8, 8), dtype=np.float32)

        pilot = ModelPilot(model, plan, bev_fn, decision_interval=0.5)
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        for _ in range(10):
            turn_rate, accel = pilot.control(state, 0.1)
            state = advance(state, turn_rate, accel, 0.1)
        assert len(calls) == 2  # t=0 and t=0.5

    def test_speed_follows_predicted_spacing(self):
        plan = straight_plan()
        model = make_driving_model((3, 8, 8), 4, 16, seed=0)
        # Force known forward waypoints: 2 m apart at 0.5 s -> 4 m/s.
        wp = np.array([[2.0, 0.0], [4.0, 0.0], [6.0, 0.0], [8.0, 0.0]], dtype=np.float32)
        model.forward = lambda bev, cmd: wp.reshape(1, -1)
        pilot = ModelPilot(model, plan, lambda s, p: np.zeros((3, 8, 8), np.float32))
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        for _ in range(100):
            turn_rate, accel = pilot.control(state, 0.1)
            state = advance(state, turn_rate, accel, 0.1)
        assert state.speed == pytest.approx(4.0, abs=0.8)

    def test_near_zero_waypoints_stop_vehicle(self):
        plan = straight_plan()
        model = make_driving_model((3, 8, 8), 4, 16, seed=0)
        wp = np.full((4, 2), 0.01, dtype=np.float32)
        model.forward = lambda bev, cmd: wp.reshape(1, -1)
        pilot = ModelPilot(model, plan, lambda s, p: np.zeros((3, 8, 8), np.float32))
        state = VehicleState(0.0, 0.0, 0.0, 6.0)
        for _ in range(50):
            turn_rate, accel = pilot.control(state, 0.1)
            state = advance(state, turn_rate, accel, 0.1)
        assert state.speed < 0.5

    def test_done_tracks_route_progress(self):
        plan = straight_plan(60.0)
        model = make_driving_model((3, 8, 8), 4, 16, seed=0)
        wp = np.array([[3.0, 0.0], [6.0, 0.0], [9.0, 0.0], [12.0, 0.0]], dtype=np.float32)
        model.forward = lambda bev, cmd: wp.reshape(1, -1)
        pilot = ModelPilot(model, plan, lambda s, p: np.zeros((3, 8, 8), np.float32))
        state = VehicleState(0.0, 0.0, 0.0, 0.0)
        for _ in range(400):
            turn_rate, accel = pilot.control(state, 0.1)
            state = advance(state, turn_rate, accel, 0.1)
            if pilot.done():
                break
        assert pilot.done()
