"""Tests for radio profiles (§V) and the incentive ledger (§V)."""

import pytest

from repro.core.incentives import IncentiveConfig, IncentiveLedger
from repro.net.channel import transfer_time_lossless
from repro.net.profiles import (
    DATA_CENTRIC,
    IEEE_80211BD,
    NR_V2X,
    get_radio_profile,
)


class TestRadioProfiles:
    def test_lookup(self):
        assert get_radio_profile("802.11bd") is IEEE_80211BD
        assert get_radio_profile("nr-v2x") is NR_V2X
        with pytest.raises(ValueError):
            get_radio_profile("carrier-pigeon")

    def test_baseline_matches_paper(self):
        assert IEEE_80211BD.bandwidth_bps == 31e6
        assert IEEE_80211BD.max_range == 500.0
        assert not IEEE_80211BD.supports_multicast

    def test_nrv2x_better_at_range(self):
        old = IEEE_80211BD.wireless()
        new = NR_V2X.wireless()
        for distance in (100.0, 300.0, 500.0):
            assert new.loss_at(distance) <= old.loss_at(distance)

    def test_nrv2x_longer_range(self):
        assert NR_V2X.wireless().in_range(550.0)
        assert not IEEE_80211BD.wireless().in_range(550.0)

    def test_multicast_capability(self):
        assert DATA_CENTRIC.supports_multicast

    def test_channel_uses_profile_bandwidth(self):
        channel = NR_V2X.channel()
        t_old = transfer_time_lossless(52 * 1024 * 1024, IEEE_80211BD.channel())
        t_new = transfer_time_lossless(52 * 1024 * 1024, channel)
        assert t_new < t_old

    def test_wireless_can_be_disabled(self):
        assert NR_V2X.wireless(enabled=False).loss_at(400.0) == 0.0


class TestIncentiveLedger:
    def test_initial_balance(self):
        ledger = IncentiveLedger()
        assert ledger.balance("v0") == IncentiveConfig().initial_balance

    def test_coreset_exchange_zero_sum(self):
        ledger = IncentiveLedger()
        ledger.record_coreset_exchange("a", "b")
        assert ledger.balance("a") == pytest.approx(11.0)
        assert ledger.balance("b") == pytest.approx(9.0)
        assert ledger.total_credit() == pytest.approx(0.0)

    def test_model_delivery_scales_with_weight(self):
        ledger = IncentiveLedger()
        ledger.record_model_delivery("a", "b", aggregation_weight=0.8)
        ledger.record_model_delivery("c", "d", aggregation_weight=0.1)
        gain_a = ledger.balance("a") - 10.0
        gain_c = ledger.balance("c") - 10.0
        assert gain_a == pytest.approx(8.0)
        assert gain_c == pytest.approx(1.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            IncentiveLedger().record_model_delivery("a", "b", 1.5)

    def test_debt_gating(self):
        config = IncentiveConfig(debt_limit=5.0, initial_balance=0.0)
        ledger = IncentiveLedger(config)
        assert ledger.allow_exchange("b")
        for _ in range(6):
            ledger.record_coreset_exchange("a", "b")
        assert ledger.balance("b") == -6.0
        assert not ledger.allow_exchange("b")
        assert ledger.allow_exchange("a")

    def test_contributing_clears_debt(self):
        config = IncentiveConfig(debt_limit=5.0, initial_balance=0.0)
        ledger = IncentiveLedger(config)
        for _ in range(6):
            ledger.record_coreset_exchange("a", "b")
        ledger.record_model_delivery("b", "a", aggregation_weight=0.5)
        assert ledger.allow_exchange("b")

    def test_summary_structure(self):
        ledger = IncentiveLedger()
        ledger.record_coreset_exchange("a", "b")
        summary = ledger.summary()
        assert summary["a"]["earned"] == 1.0
        assert summary["b"]["spent"] == 1.0
        assert set(summary["a"]) == {"balance", "earned", "spent"}
