"""Tests for multi-seed aggregation (statistics only; no training)."""

import numpy as np
import pytest

from repro.experiments import multiseed
from repro.experiments.multiseed import (
    SeedSummary,
    aggregate_tables,
    compare_methods,
    run_seeds,
)


def make_summary(method, finals, n_points=5):
    curves = np.stack(
        [np.linspace(5.0, final, n_points) for final in finals]
    )
    return SeedSummary(
        method=method,
        seeds=list(range(len(finals))),
        grid=np.linspace(0, 100, n_points),
        curves=curves,
        receive_rates=np.full(len(finals), 0.8),
    )


class TestSeedSummary:
    def test_mean_and_std_curves(self):
        summary = make_summary("A", [1.0, 2.0])
        assert summary.mean_curve[-1] == pytest.approx(1.5)
        assert summary.std_curve[-1] == pytest.approx(np.std([1.0, 2.0], ddof=1))

    def test_single_seed_zero_std(self):
        summary = make_summary("A", [1.0])
        assert np.allclose(summary.std_curve, 0.0)

    def test_describe_mentions_method(self):
        text = make_summary("LbChat", [1.0, 1.2]).describe()
        assert "LbChat" in text and "±" in text


class FakeRunResult:
    """Stands in for RunResult; duration controls the loss-curve grid."""

    def __init__(self, duration):
        self.duration = duration
        self.receive_rate = 0.8

    def loss_curve(self, n_points=21):
        grid = np.linspace(0.0, self.duration, n_points)
        return grid, np.linspace(5.0, 1.0, n_points)


class FakeContext:
    class scale:
        name = "fake"


class TestRunSeeds:
    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            run_seeds(FakeContext(), "LbChat", seeds=[])

    def test_mismatched_grids_rejected(self, monkeypatch):
        # Regression: seeds whose runs disagree on duration used to be
        # stacked silently onto the first seed's grid.
        monkeypatch.setattr(
            multiseed,
            "run_specs",
            lambda specs, jobs=1: [
                FakeRunResult(duration=100.0 + 50.0 * i)
                for i, _ in enumerate(specs)
            ],
        )
        monkeypatch.setattr(multiseed, "register_context", lambda context: None)
        with pytest.raises(ValueError, match="different time grid"):
            run_seeds(FakeContext(), "LbChat", seeds=[1, 2])

    def test_matching_grids_stack(self, monkeypatch):
        monkeypatch.setattr(
            multiseed,
            "run_specs",
            lambda specs, jobs=1: [FakeRunResult(duration=100.0) for _ in specs],
        )
        monkeypatch.setattr(multiseed, "register_context", lambda context: None)
        summary = run_seeds(FakeContext(), "LbChat", seeds=[1, 2], n_points=7)
        assert summary.curves.shape == (2, 7)
        assert summary.grid[-1] == 100.0


class TestCompareMethods:
    def test_clearly_better_low_p(self):
        a = make_summary("A", [0.5, 0.52, 0.48, 0.51])
        b = make_summary("B", [1.5, 1.52, 1.48, 1.51])
        out = compare_methods(a, b)
        assert out["difference"] < 0
        assert out["p_value_a_less_than_b"] < 0.01

    def test_clearly_worse_high_p(self):
        a = make_summary("A", [1.5, 1.52, 1.48, 1.51])
        b = make_summary("B", [0.5, 0.52, 0.48, 0.51])
        out = compare_methods(a, b)
        assert out["p_value_a_less_than_b"] > 0.99

    def test_single_seed_nan_p(self):
        out = compare_methods(make_summary("A", [1.0]), make_summary("B", [2.0]))
        assert np.isnan(out["p_value_a_less_than_b"])
        assert out["difference"] == pytest.approx(-1.0)


class TestAggregateTables:
    def test_mean_and_std_cells(self):
        tables = [
            {"Straight": {"LbChat": 90.0}},
            {"Straight": {"LbChat": 80.0}},
        ]
        out = aggregate_tables(tables)
        mean, std = out["Straight"]["LbChat"]
        assert mean == 85.0
        assert std == pytest.approx(np.std([90, 80], ddof=1))

    def test_single_table_zero_std(self):
        out = aggregate_tables([{"S": {"A": 70.0}}])
        assert out["S"]["A"] == (70.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_tables([])
