"""Tests for comfort metrics and trajectory recording."""

import numpy as np
import pytest

from repro.sim.comfort import ComfortMetrics, comfort_score, compute_comfort


def straight_cruise(n=100, speed=10.0, dt=0.1):
    """Constant-speed straight trajectory."""
    t = np.arange(n) * dt
    return np.stack([speed * t, np.zeros(n), np.zeros(n), np.full(n, speed)], axis=1)


def jerky_drive(n=100, dt=0.1):
    """Alternates hard accel/brake every step."""
    speed = 10.0 + 3.0 * (np.arange(n) % 2)
    t = np.arange(n) * dt
    return np.stack([10.0 * t, np.zeros(n), np.zeros(n), speed], axis=1)


class TestComputeComfort:
    def test_smooth_cruise_is_calm(self):
        metrics = compute_comfort(straight_cruise(), dt=0.1)
        assert metrics.max_acceleration == pytest.approx(0.0)
        assert metrics.max_deceleration == pytest.approx(0.0)
        assert metrics.jerk_rms == pytest.approx(0.0)
        assert metrics.max_lateral_acceleration == pytest.approx(0.0)
        assert metrics.speed_std == pytest.approx(0.0)

    def test_jerky_drive_measured(self):
        metrics = compute_comfort(jerky_drive(), dt=0.1)
        assert metrics.max_acceleration > 10.0
        assert metrics.jerk_rms > 100.0

    def test_lateral_from_turning(self):
        n, dt, speed = 100, 0.1, 10.0
        heading = 0.5 * np.arange(n) * dt  # 0.5 rad/s yaw
        traj = np.stack(
            [np.zeros(n), np.zeros(n), heading, np.full(n, speed)], axis=1
        )
        metrics = compute_comfort(traj, dt=dt)
        assert metrics.max_lateral_acceleration == pytest.approx(5.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_comfort(np.zeros((2, 4)), dt=0.1)
        with pytest.raises(ValueError):
            compute_comfort(np.zeros((10, 3)), dt=0.1)
        with pytest.raises(ValueError):
            compute_comfort(np.zeros((10, 4)), dt=0.0)


class TestComfortScore:
    def test_perfect_drive_scores_100(self):
        metrics = compute_comfort(straight_cruise(), dt=0.1)
        assert comfort_score(metrics) == pytest.approx(100.0)

    def test_jerky_drive_scores_low(self):
        metrics = compute_comfort(jerky_drive(), dt=0.1)
        assert comfort_score(metrics) < 40.0

    def test_monotone_in_harshness(self):
        calm = ComfortMetrics(1.0, 1.0, 0.3, 0.5, 0.2, 10.0)
        harsh = ComfortMetrics(4.0, 4.0, 2.0, 3.0, 3.0, 10.0)
        assert comfort_score(calm) > comfort_score(harsh)


class TestTrajectoryRecording:
    def test_episode_records_trajectory(self, town):
        from repro.nn import make_driving_model
        from repro.sim.evaluate import (
            DrivingCondition,
            EvalConfig,
            route_for_condition,
            run_episode,
        )
        from repro.engine.random import spawn_rng
        from tests.conftest import BEV_SPEC, N_WAYPOINTS

        config = EvalConfig(
            bev_spec=BEV_SPEC, n_waypoints=N_WAYPOINTS, normal_cars=0, normal_pedestrians=0
        )
        model = make_driving_model(BEV_SPEC.shape, N_WAYPOINTS, 16, seed=0)
        plan = route_for_condition(
            town, DrivingCondition.STRAIGHT, spawn_rng(0, "cft"), config
        )
        result = run_episode(
            model, town, plan, DrivingCondition.STRAIGHT, config, seed=1,
            record_trajectory=True,
        )
        assert result.trajectory is not None
        assert result.trajectory.shape[1] == 4
        assert len(result.trajectory) >= 3
        metrics = compute_comfort(result.trajectory, config.dt)
        assert np.isfinite(comfort_score(metrics))

    def test_default_no_trajectory(self, town):
        from repro.nn import make_driving_model
        from repro.sim.evaluate import (
            DrivingCondition,
            EvalConfig,
            route_for_condition,
            run_episode,
        )
        from repro.engine.random import spawn_rng
        from tests.conftest import BEV_SPEC, N_WAYPOINTS

        config = EvalConfig(
            bev_spec=BEV_SPEC, n_waypoints=N_WAYPOINTS, normal_cars=0, normal_pedestrians=0
        )
        model = make_driving_model(BEV_SPEC.shape, N_WAYPOINTS, 16, seed=0)
        plan = route_for_condition(
            town, DrivingCondition.STRAIGHT, spawn_rng(0, "cft2"), config
        )
        result = run_episode(
            model, town, plan, DrivingCondition.STRAIGHT, config, seed=1
        )
        assert result.trajectory is None
