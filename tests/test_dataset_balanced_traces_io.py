"""Tests for balanced batch sampling and trace persistence."""

import numpy as np

from repro.nn.model import N_COMMANDS
from repro.sim.dataset import DrivingDataset, Frame
from repro.sim.traces import MobilityTraces


def make_dataset(counts):
    """A dataset with `counts[c]` frames of command c."""
    frames = []
    i = 0
    for cmd, n in enumerate(counts):
        for _ in range(n):
            frames.append(
                Frame(
                    f"f{i}",
                    np.zeros((1, 4, 4), np.float32),
                    cmd,
                    np.zeros(4, np.float32),
                    1.0,
                )
            )
            i += 1
    return DrivingDataset(frames)


class TestBalancedSampling:
    def test_rare_commands_overrepresented(self):
        ds = make_dataset([97, 1, 1, 1])
        rng = np.random.default_rng(0)
        _, commands, _, _ = ds.sample_batch(64, rng, balance_commands=True)
        counts = np.bincount(commands, minlength=N_COMMANDS)
        # Each present command gets ~a quarter of the batch.
        assert counts.min() >= 10

    def test_unbalanced_respects_frequency(self):
        ds = make_dataset([97, 1, 1, 1])
        rng = np.random.default_rng(0)
        _, commands, _, _ = ds.sample_batch(64, rng, balance_commands=False)
        counts = np.bincount(commands, minlength=N_COMMANDS)
        assert counts[0] > 40

    def test_batch_size_respected(self):
        ds = make_dataset([10, 10])
        rng = np.random.default_rng(0)
        bev, commands, targets, idx = ds.sample_batch(16, rng, balance_commands=True)
        assert len(commands) == 16

    def test_single_command_dataset(self):
        ds = make_dataset([20])
        rng = np.random.default_rng(0)
        _, commands, _, _ = ds.sample_batch(8, rng, balance_commands=True)
        assert (commands == 0).all()

    def test_weights_still_matter_within_command(self):
        frames = [
            Frame("a", np.zeros((1, 4, 4), np.float32), 0, np.zeros(4, np.float32), 1e-9),
            Frame("b", np.zeros((1, 4, 4), np.float32), 0, np.zeros(4, np.float32), 1.0),
        ]
        ds = DrivingDataset(frames)
        rng = np.random.default_rng(0)
        _, _, _, idx = ds.sample_batch(64, rng, balance_commands=True)
        assert (np.asarray(idx) == 1).mean() > 0.95


class TestTracePersistence:
    def test_roundtrip(self, tmp_path, traces):
        path = tmp_path / "traces.npz"
        traces.save(path)
        restored = MobilityTraces.load(path)
        assert restored.vehicle_ids == traces.vehicle_ids
        assert np.array_equal(restored.times, traces.times)
        assert np.array_equal(restored.positions, traces.positions)

    def test_queries_work_after_load(self, tmp_path, traces):
        path = tmp_path / "traces.npz"
        traces.save(path)
        restored = MobilityTraces.load(path)
        assert restored.distance(0, 1, 10.0) == traces.distance(0, 1, 10.0)
        assert restored.neighbors(0, 10.0, 1e9) == traces.neighbors(0, 10.0, 1e9)
