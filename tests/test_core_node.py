"""Unit tests for VehicleNode."""

import numpy as np
import pytest

from repro.compression import compress_topk
from repro.sim.dataset import DrivingDataset
from tests.conftest import make_node


class TestTraining:
    def test_train_step_returns_loss(self, node):
        loss = node.train_step()
        assert loss > 0

    def test_training_reduces_loss(self, node):
        first = node.evaluate(node.dataset, with_penalty=False)
        for _ in range(60):
            node.train_step()
        assert node.evaluate(node.dataset, with_penalty=False) < first

    def test_version_bumps_per_step(self, node):
        v0 = node.model_version
        node.train_step()
        assert node.model_version == v0 + 1

    def test_empty_dataset_rejected(self, fleet_datasets):
        with pytest.raises(ValueError):
            make_node("vX", DrivingDataset())


class TestLossCache:
    def test_cache_consistent_with_direct_eval(self, node):
        losses_a = node.per_sample_losses(node.dataset)
        losses_b = node.per_sample_losses(node.dataset)  # cached path
        assert np.allclose(losses_a, losses_b)

    def test_cache_invalidated_by_training(self, node):
        before = node.per_sample_losses(node.dataset).copy()
        for _ in range(30):
            node.train_step()
        after = node.per_sample_losses(node.dataset)
        assert not np.allclose(before, after)

    def test_partial_cache_hits(self, node):
        subset = node.dataset.subset(range(5))
        node.per_sample_losses(subset)
        full = node.per_sample_losses(node.dataset)
        direct = []
        bev, cmds, tgts, _ = node.dataset.arrays()
        pred = node.model.forward(bev, cmds)
        from repro.nn import waypoint_l1

        _, per, _ = waypoint_l1(pred, tgts)
        assert np.allclose(full, per, atol=1e-5)


class TestEvaluate:
    def test_penalty_increases_loss(self, node):
        with_p = node.evaluate(node.dataset, with_penalty=True)
        without = node.evaluate(node.dataset, with_penalty=False)
        assert with_p >= without

    def test_evaluate_model_on_matches_self(self, node):
        a = node.evaluate(node.coreset.data, with_penalty=True)
        b = node.evaluate_model_on(node.model, node.coreset.data)
        assert a == pytest.approx(b, rel=1e-5)


class TestCoresetLifecycle:
    def test_initial_coreset_built(self, node):
        assert 0 < len(node.coreset) <= len(node.dataset)

    def test_refresh_after_steps(self, fleet_datasets):
        node = make_node("v0", fleet_datasets["v0"], coreset_refresh_steps=3)
        ids_before = node.coreset.data.ids
        for _ in range(4):
            node.train_step()
        node.maybe_refresh_coreset()
        # Refresh ran (steps-since-refresh reset); contents may differ.
        assert node._steps_since_refresh == 0

    def test_absorb_grows_dataset(self, node_pair):
        node_a, node_b = node_pair
        before = len(node_a.dataset)
        added = node_a.absorb_coreset(node_b.coreset)
        assert added == len(node_b.coreset)
        assert len(node_a.dataset) == before + added

    def test_absorb_idempotent(self, node_pair):
        node_a, node_b = node_pair
        node_a.absorb_coreset(node_b.coreset)
        again = node_a.absorb_coreset(node_b.coreset)
        assert again == 0

    def test_absorbed_frames_have_unit_weight(self, node_pair):
        node_a, node_b = node_pair
        peer_ids = set(node_b.coreset.data.ids)
        node_a.absorb_coreset(node_b.coreset)
        for i, frame_id in enumerate(node_a.dataset.ids):
            if frame_id in peer_ids:
                assert node_a.dataset.frame(i).weight == 1.0

    def test_merge_reduce_keeps_coreset_bounded(self, fleet_datasets):
        node_a = make_node("v0", fleet_datasets["v0"], coreset_size=10)
        node_b = make_node("v1", fleet_datasets["v1"], coreset_size=10, seed=6)
        node_a.absorb_coreset(node_b.coreset)
        assert len(node_a.coreset) <= 14


class TestModelExchange:
    def test_compress_model_roundtrip_size(self, node):
        compressed = node.compress_model(0.5)
        assert compressed.psi == pytest.approx(0.5, abs=0.02)

    def test_receive_better_model_improves(self, node_pair):
        node_a, node_b = node_pair
        for _ in range(80):
            node_b.train_step()
        eval_set = node_a.coreset.data
        before = node_a.evaluate(eval_set, with_penalty=False)
        compressed = node_b.compress_model(1.0)
        node_a.receive_and_aggregate(compressed, eval_set)
        after = node_a.evaluate(eval_set, with_penalty=False)
        assert after < before

    def test_receive_weights_favor_better_model(self, node_pair):
        node_a, node_b = node_pair
        for _ in range(80):
            node_b.train_step()
        compressed = node_b.compress_model(1.0)
        w_local, w_received = node_a.receive_and_aggregate(
            compressed, node_a.coreset.data
        )
        assert w_received > w_local

    def test_mean_weights_override(self, node_pair):
        node_a, node_b = node_pair
        compressed = node_b.compress_model(1.0)
        weights = node_a.receive_and_aggregate(
            compressed, node_a.coreset.data, mean_weights=True
        )
        assert weights == (0.5, 0.5)

    def test_sparse_receive_overlays_local(self, node_pair):
        node_a, node_b = node_pair
        local_before = node_a.flat_params.copy()
        compressed = node_b.compress_model(0.1)
        node_a.receive_and_aggregate(compressed, node_a.coreset.data, mean_weights=True)
        merged = node_a.flat_params
        untouched = np.setdiff1d(np.arange(len(merged)), compressed.indices)
        # Unsent coordinates: merged = 0.5*local + 0.5*local = local.
        assert np.allclose(merged[untouched], local_before[untouched], atol=1e-6)

    def test_replace_model_params(self, node):
        target = np.zeros_like(node.flat_params)
        node.replace_model_params(target)
        assert np.allclose(node.flat_params, 0.0)
