"""Unit tests for background traffic."""

import numpy as np
import pytest

from repro.sim import TownMap
from repro.sim.traffic import (
    BackgroundCar,
    Pedestrian,
    TrafficManager,
    road_obstacles,
)


@pytest.fixture(scope="module")
def town():
    return TownMap(size=400.0, grid_n=3, seed=0)


class TestBackgroundCar:
    def test_spawns_on_its_route(self, town):
        car = BackgroundCar(town, np.random.default_rng(0))
        assert town.is_on_road(car.state.position, margin=1.0)

    def test_moves_over_time(self, town):
        car = BackgroundCar(town, np.random.default_rng(1))
        start = car.state.position.copy()
        for _ in range(100):
            car.step(np.zeros((0, 2)), dt=0.1)
        assert np.linalg.norm(car.state.position - start) > 5.0

    def test_renews_route_on_completion(self, town):
        car = BackgroundCar(town, np.random.default_rng(2))
        first_plan = car.pilot.plan
        for _ in range(3000):
            car.step(np.zeros((0, 2)), dt=0.1)
            if car.pilot.plan is not first_plan:
                break
        assert car.pilot.plan is not first_plan


class TestPedestrian:
    def test_spawns_off_road(self, town):
        for seed in range(5):
            ped = Pedestrian(town, np.random.default_rng(seed))
            # Sidewalk points sit just past the pavement edge.
            assert not town.is_on_road(ped.position) or town.is_on_road(
                ped.position, margin=5.0
            )

    def test_walks_toward_target(self, town):
        ped = Pedestrian(town, np.random.default_rng(3))
        start = ped.position.copy()
        for _ in range(200):
            ped.step(0.1)
        assert np.linalg.norm(ped.position - start) > 1.0

    def test_waits_at_curb_for_moving_car(self, town):
        ped = Pedestrian(town, np.random.default_rng(4))
        # Force a crossing: target on the other side of a road.
        a, b = list(town.graph.edges())[0]
        mid = (town.node_position(a) + town.node_position(b)) / 2
        ped.position = mid + np.array([0.0, town.road_half_width + 1.0])
        ped._target = mid - np.array([0.0, town.road_half_width + 1.0])
        cars = mid[None, :] + np.array([[3.0, 0.0]])
        before = ped.position.copy()
        ped.step(0.1, car_positions=cars, car_speeds=np.array([8.0]))
        entered_road = town.is_on_road(ped.position)
        # Either it hadn't reached the curb yet (moved along sidewalk) or
        # it waited; it must not have stepped onto the pavement.
        assert not entered_road or np.allclose(ped.position, before)

    def test_crosses_for_stopped_car(self, town):
        ped = Pedestrian(town, np.random.default_rng(4))
        a, b = list(town.graph.edges())[0]
        mid = (town.node_position(a) + town.node_position(b)) / 2
        ped.position = mid + np.array([0.0, town.road_half_width + 0.05])
        ped._target = mid - np.array([0.0, town.road_half_width + 1.0])
        cars = mid[None, :] + np.array([[10.0, 0.0]])
        moved = False
        for _ in range(20):
            before = ped.position.copy()
            ped.step(0.1, car_positions=cars, car_speeds=np.array([0.0]))
            if not np.allclose(ped.position, before):
                moved = True
        assert moved

    def test_personal_space_rerolls_target(self, town):
        ped = Pedestrian(town, np.random.default_rng(5))
        target_before = ped._target.copy()
        direction = target_before - ped.position
        direction /= max(np.linalg.norm(direction), 1e-9)
        blocking_car = (ped.position + direction * 2.0)[None, :]
        ped.step(0.1, car_positions=blocking_car, car_speeds=np.array([0.0]))
        assert not np.allclose(ped._target, target_before)


class TestTrafficManager:
    def test_counts(self, town):
        manager = TrafficManager(town, 3, 7, np.random.default_rng(0))
        assert manager.car_positions().shape == (3, 2)
        assert manager.pedestrian_positions().shape == (7, 2)

    def test_empty_manager(self, town):
        manager = TrafficManager(town, 0, 0, np.random.default_rng(0))
        assert manager.car_positions().shape == (0, 2)
        manager.step(np.zeros((0, 2)), dt=0.1)  # no crash

    def test_keep_clear_respected(self, town):
        center = town.node_position(town.town_nodes()[0])
        manager = TrafficManager(
            town, 6, 0, np.random.default_rng(1), keep_clear=center, keep_clear_radius=30.0
        )
        dists = np.linalg.norm(manager.car_positions() - center, axis=1)
        assert (dists >= 30.0).all()

    def test_step_moves_agents(self, town):
        manager = TrafficManager(town, 2, 5, np.random.default_rng(2))
        before_cars = manager.car_positions().copy()
        for _ in range(50):
            manager.step(np.zeros((0, 2)), dt=0.1)
        assert not np.allclose(manager.car_positions(), before_cars)


class TestRoadObstacles:
    def test_filters_off_road(self, town):
        a, b = list(town.graph.edges())[0]
        mid = (town.node_position(a) + town.node_position(b)) / 2
        on_road = mid
        off_road = np.array([200.0, 2.0])
        out = road_obstacles(town, np.stack([on_road, off_road]), mid, radius=500.0)
        assert len(out) == 1
        assert np.allclose(out[0], on_road)

    def test_filters_far_away(self, town):
        a, b = list(town.graph.edges())[0]
        mid = (town.node_position(a) + town.node_position(b)) / 2
        out = road_obstacles(town, mid[None, :] + 100.0, mid, radius=10.0)
        assert len(out) == 0

    def test_empty_input(self, town):
        out = road_obstacles(town, np.zeros((0, 2)), np.zeros(2))
        assert len(out) == 0
