"""Unit tests for route planning and command generation."""

import numpy as np
import pytest

from repro.sim import TownMap
from repro.sim.router import (
    CMD_FOLLOW,
    CMD_LEFT,
    CMD_RIGHT,
    CMD_STRAIGHT,
    COMMAND_HORIZON,
    RoutePlan,
    plan_route,
    random_route,
)


@pytest.fixture(scope="module")
def town():
    return TownMap(size=400.0, grid_n=3, seed=0)


def l_route(turn_left=True):
    """A synthetic 90-degree turn route."""
    sign = 1.0 if turn_left else -1.0
    return RoutePlan(
        np.array([[0.0, 0.0], [100.0, 0.0], [100.0, sign * 100.0]])
    )


class TestRoutePlan:
    def test_requires_two_vertices(self):
        with pytest.raises(ValueError):
            RoutePlan(np.array([[0.0, 0.0]]))

    def test_total_length(self):
        plan = l_route()
        assert plan.total_length == pytest.approx(200.0, rel=1e-3)

    def test_point_at_interpolates(self):
        plan = l_route()
        assert np.allclose(plan.point_at(50.0), [50.0, 0.0], atol=0.5)

    def test_point_at_clamps(self):
        plan = l_route()
        assert np.allclose(plan.point_at(-5.0), [0.0, 0.0])
        assert np.allclose(plan.point_at(1e6), [100.0, 100.0])

    def test_heading_along_first_leg(self):
        plan = l_route()
        assert plan.heading_at(10.0) == pytest.approx(0.0, abs=0.05)

    def test_heading_after_turn(self):
        plan = l_route()
        assert plan.heading_at(150.0) == pytest.approx(np.pi / 2, abs=0.05)

    def test_left_turn_command(self):
        plan = l_route(turn_left=True)
        s = 100.0 - COMMAND_HORIZON / 2
        assert plan.command_at(s) == CMD_LEFT

    def test_right_turn_command(self):
        plan = l_route(turn_left=False)
        s = 100.0 - COMMAND_HORIZON / 2
        assert plan.command_at(s) == CMD_RIGHT

    def test_follow_far_from_turn(self):
        plan = l_route()
        assert plan.command_at(10.0) == CMD_FOLLOW

    def test_straight_command_for_shallow_angle(self):
        plan = RoutePlan(
            np.array([[0.0, 0.0], [100.0, 0.0], [200.0, 10.0]])
        )
        assert plan.command_at(90.0) == CMD_STRAIGHT

    def test_project_finds_nearest(self):
        plan = l_route()
        s = plan.project(np.array([60.0, 5.0]))
        assert s == pytest.approx(60.0, abs=2.5)

    def test_project_with_hint_stays_local(self):
        plan = l_route()
        s = plan.project(np.array([60.0, 5.0]), hint=55.0)
        assert s == pytest.approx(60.0, abs=2.5)

    def test_lane_point_offset_right(self):
        plan = l_route()
        lane = plan.lane_point_at(50.0, 2.0)
        center = plan.point_at(50.0)
        # Heading +x: right is -y.
        assert lane[1] == pytest.approx(center[1] - 2.0, abs=0.2)

    def test_distance_to_intersection(self):
        plan = l_route()
        assert plan.distance_to_intersection(50.0) == pytest.approx(50.0, abs=2.0)
        assert plan.distance_to_intersection(150.0) == np.inf

    def test_done_near_end(self):
        plan = l_route()
        assert not plan.done(100.0)
        assert plan.done(plan.total_length - 1.0)

    def test_route_cells_cover_route(self):
        plan = l_route()
        cells = plan.route_cells(2.0)
        assert (0, 0) in cells
        assert (49, 0) in cells  # near the corner


class TestPlanRoute:
    def test_endpoints_match_nodes(self, town):
        nodes = town.town_nodes()
        plan = plan_route(town, nodes[0], nodes[-1])
        assert np.allclose(plan.point_at(0.0), town.node_position(nodes[0]))

    def test_random_route_min_length(self, town):
        rng = np.random.default_rng(0)
        for _ in range(10):
            plan = random_route(town, rng, min_length=150.0)
            assert plan.total_length >= 150.0

    def test_random_route_with_start(self, town):
        rng = np.random.default_rng(1)
        start = town.town_nodes()[0]
        plan = random_route(town, rng, min_length=100.0, start=start)
        assert np.allclose(plan.point_at(0.0), town.node_position(start))

    def test_impossible_min_length_raises(self, town):
        rng = np.random.default_rng(2)
        with pytest.raises(RuntimeError):
            random_route(town, rng, min_length=1e7, max_tries=5)

    def test_turn_direction_balance(self, town):
        rng = np.random.default_rng(3)
        counts = {CMD_LEFT: 0, CMD_RIGHT: 0}
        for _ in range(150):
            plan = random_route(town, rng, min_length=150.0)
            for _, cmd in plan._turns:
                if cmd in counts:
                    counts[cmd] += 1
        total = counts[CMD_LEFT] + counts[CMD_RIGHT]
        assert total > 0
        assert 0.3 < counts[CMD_LEFT] / total < 0.7
