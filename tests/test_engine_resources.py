"""Tests for the FIFO Resource primitive."""

import pytest

from repro.engine import Simulator
from repro.engine.resources import Resource


def test_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_immediate_grant_when_free():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def proc():
        grant = yield from resource.request()
        log.append(("got", sim.now))
        resource.release(grant)

    sim.process(proc())
    sim.run()
    assert log == [("got", 0.0)]
    assert resource.in_use == 0


def test_fifo_ordering():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def proc(name, hold):
        grant = yield from resource.request()
        order.append((name, sim.now))
        yield sim.timeout(hold)
        resource.release(grant)

    sim.process(proc("a", 5.0))
    sim.process(proc("b", 5.0))
    sim.process(proc("c", 5.0))
    sim.run()
    assert order == [("a", 0.0), ("b", 5.0), ("c", 10.0)]


def test_capacity_two_parallel():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    order = []

    def proc(name):
        grant = yield from resource.request()
        order.append((name, sim.now))
        yield sim.timeout(10.0)
        resource.release(grant)

    for name in ("a", "b", "c"):
        sim.process(proc(name))
    sim.run()
    times = dict((name, t) for name, t in order)
    assert times["a"] == 0.0 and times["b"] == 0.0
    assert times["c"] == 10.0


def test_release_foreign_grant_rejected():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    from repro.engine.resources import Grant

    with pytest.raises(ValueError):
        resource.release(Grant(99))


def test_queue_length_and_available():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    grants = []

    def holder():
        grant = yield from resource.request()
        grants.append(grant)
        yield sim.timeout(100.0)

    def waiter():
        yield sim.timeout(1.0)
        grant = yield from resource.request()
        grants.append(grant)

    sim.process(holder())
    sim.process(waiter())
    sim.run(until=50.0)
    assert resource.in_use == 1
    assert resource.queue_length == 1
    assert resource.available == 0


def test_reuse_after_release():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    count = []

    def proc():
        for _ in range(3):
            grant = yield from resource.request()
            count.append(sim.now)
            yield sim.timeout(1.0)
            resource.release(grant)

    sim.process(proc())
    sim.run()
    assert count == [0.0, 1.0, 2.0]
