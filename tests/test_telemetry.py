"""Tests for the repro.telemetry observability layer.

Covers the units (tracer, registry, profiler, export, report), the
no-op fast path of the hooks, and the end-to-end contract: a traced
fleet run produces spans that match the trainer's own ChatLog, and the
JSONL export round-trips losslessly.
"""

import numpy as np
import pytest

from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.engine.metrics import CounterSet, ReceiveRateRecorder
from repro.sim.dataset import DrivingDataset
from repro.telemetry import (
    MetricRegistry,
    TelemetrySession,
    Tracer,
    WallClockProfiler,
    export_jsonl,
    export_metrics_csv,
    load_jsonl,
    render_report,
    report_session,
    report_trace,
    time_call,
)
from repro.telemetry import hooks
from tests.conftest import make_node


class TestTracer:
    def test_spans_nest_and_close(self):
        tracer = Tracer()
        outer = tracer.start_span("run", 0.0, method="LbChat")
        inner = tracer.start_span("chat", 1.0)
        assert inner.parent_id == outer.span_id
        tracer.end_span(3.0, status="ok")
        assert tracer.current_span is outer
        tracer.end_span(10.0)
        assert inner.end == 3.0 and inner.duration == 2.0
        assert outer.status == "ok" and outer.attrs["method"] == "LbChat"

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        orphan = tracer.event("boot", 0.0)
        tracer.start_span("chat", 1.0)
        child = tracer.event("transfer", 2.0, bytes=100)
        assert orphan.span_id is None
        assert child.span_id == tracer.current_span.span_id

    def test_counts_and_find(self):
        tracer = Tracer()
        for t in range(3):
            tracer.start_span("chat", float(t))
            tracer.end_span(float(t) + 0.5)
        tracer.event("transfer", 0.1)
        assert tracer.span_counts() == {"chat": 3}
        assert tracer.event_counts() == {"transfer": 1}
        assert len(tracer.find_spans("chat")) == 3

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end_span(1.0)


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.0)
        reg.gauge("g").set(0.5)
        for v in (1.0, 2.0, 3.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3.0
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["count"] == 3
        assert snap["histograms"]["h"]["mean"] == pytest.approx(2.0)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("a").inc(-1.0)

    def test_unset_gauge_omitted_from_snapshot(self):
        reg = MetricRegistry()
        reg.gauge("never_set")
        assert "never_set" not in reg.snapshot()["gauges"]

    def test_merge_engine_counter_set(self):
        cs = CounterSet()
        cs.add("chats", 5)
        cs.add("bytes", 1000.0)
        reg = MetricRegistry()
        reg.merge_counter_set(cs, prefix="trainer.")
        snap = reg.snapshot()["counters"]
        assert snap["trainer.chats"] == 5.0
        assert snap["trainer.bytes"] == 1000.0

    def test_merge_receive_rate(self):
        rr = ReceiveRateRecorder()
        rr.observe("v0", True)
        rr.observe("v0", False)
        reg = MetricRegistry()
        reg.merge_receive_rate(rr)
        snap = reg.snapshot()
        assert snap["counters"]["model_rx.attempted"] == 2.0
        assert snap["counters"]["model_rx.completed"] == 1.0
        assert snap["gauges"]["model_rx.rate"] == pytest.approx(0.5)

    def test_merge_is_idempotent(self):
        cs = CounterSet()
        cs.add("chats", 5)
        reg = MetricRegistry()
        reg.merge_counter_set(cs, prefix="trainer.")
        reg.merge_counter_set(cs, prefix="trainer.")
        assert reg.snapshot()["counters"]["trainer.chats"] == 5.0


class TestProfiler:
    def test_timeit_accumulates(self):
        prof = WallClockProfiler()
        for _ in range(3):
            with prof.timeit("section"):
                sum(range(100))
        summary = prof.summary()
        assert summary["section"]["count"] == 3
        assert summary["section"]["total_s"] >= 0.0
        assert "section" in prof.render()

    def test_time_call_returns_positive(self):
        assert time_call(lambda: sum(range(1000)), repeat=2) > 0.0


class TestHooksNoOp:
    def test_all_hooks_are_safe_when_inactive(self):
        assert hooks.active() is None
        hooks.count("x")
        hooks.observe("x", 1.0)
        hooks.set_gauge("x", 1.0)
        hooks.add_event("x")
        hooks.on_chat_stage("assist", 0.0, True)
        hooks.on_model_reception(True)
        hooks.on_coreset_refresh("v0", 10)
        hooks.on_coreset_merge("v0", 3)
        hooks.on_record_tick(0.0, 4)

    def test_session_context_restores_previous(self):
        outer = TelemetrySession("outer")
        with outer:
            assert hooks.active() is outer
            with TelemetrySession("inner") as inner:
                assert hooks.active() is inner
            assert hooks.active() is outer
        assert hooks.active() is None

    def test_generic_instruments_route_to_session(self):
        with TelemetrySession() as session:
            hooks.count("c", 2.0)
            hooks.observe("h", 1.5)
            hooks.set_gauge("g", 7.0)
            hooks.add_event("e", 3.0, detail="x")
        snap = session.registry.snapshot()
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 7.0
        assert session.tracer.event_counts() == {"e": 1}


class TestExportRoundTrip:
    def _toy_session(self) -> TelemetrySession:
        session = TelemetrySession(label="toy")
        session.tracer.start_span("chat", 0.0, i="v0", j="v1")
        session.tracer.event("transfer", 0.5, bytes=np.float64(10.0))
        session.tracer.end_span(1.0, status="aborted", aborted="coresets")
        session.registry.counter("chat.count").inc()
        session.registry.histogram("chat.psi").observe(0.3)
        with session.profiler.timeit("build"):
            pass
        return session

    def test_jsonl_round_trip(self, tmp_path):
        session = self._toy_session()
        path = export_jsonl(session, tmp_path / "trace.jsonl")
        trace = load_jsonl(path)
        assert trace.meta["label"] == "toy"
        assert trace.span_counts() == session.tracer.span_counts()
        assert len(trace.events) == len(session.tracer.events)
        assert trace.metrics == session.registry.snapshot()
        assert trace.spans[0]["status"] == "aborted"
        assert trace.spans[0]["attrs"]["i"] == "v0"
        assert "build" in trace.profile

    def test_metrics_csv(self, tmp_path):
        session = self._toy_session()
        path = export_metrics_csv(session.registry, tmp_path / "metrics.csv")
        text = path.read_text()
        assert "chat.count" in text and "chat.psi" in text


class TestReport:
    def test_report_mentions_key_quantities(self):
        metrics = {
            "counters": {
                "chat.count": 10.0,
                "chat.completed": 7.0,
                "chat.aborted.assist": 2.0,
                "chat.aborted.coresets": 1.0,
                "model_rx.attempted": 8.0,
                "model_rx.completed": 6.0,
                "transfer.count": 40.0,
                "transfer.failed": 3.0,
                "transfer.bytes_requested": 2e6,
                "transfer.bytes_delivered": 1.5e6,
            },
            "gauges": {"model_rx.rate": 0.75},
            "histograms": {
                "chat.psi": {
                    "count": 14, "sum": 4.2, "min": 0.0, "max": 1.0,
                    "mean": 0.3, "p50": 0.25, "p90": 0.8,
                }
            },
        }
        text = render_report(metrics, span_counts={"chat": 10}, label="LbChat")
        assert "chats: 10" in text
        assert "assist=2" in text and "coresets=1" in text
        assert "receive rate 75.0%" in text
        assert "psi distribution" in text
        assert "chat=10" in text

    def test_empty_report(self):
        assert "no telemetry" in render_report({})


class TestTracedFleetRun:
    """End-to-end: trace a tiny fleet, export, reload, cross-check."""

    @pytest.fixture()
    def traced_run(self, fleet_datasets, traces):
        nodes = [
            make_node(vid, ds, coreset_size=10, seed=3)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        trainer = LbChatTrainer(
            nodes,
            traces,
            validation,
            LbChatConfig(
                duration=120.0, train_interval=2.0, record_interval=30.0,
                wireless_loss=False, seed=1,
            ),
        )
        with TelemetrySession(label="test fleet") as session:
            trainer.run()
        return trainer, session

    def test_chat_spans_match_chat_log(self, traced_run):
        trainer, session = traced_run
        counts = session.tracer.span_counts()
        assert counts.get("trainer_run") == 1
        assert counts.get("chat", 0) == len(trainer.chat_log)
        assert len(trainer.chat_log) > 0
        aborted_spans = [
            s for s in session.tracer.find_spans("chat") if s.status == "aborted"
        ]
        assert len(aborted_spans) == sum(
            1 for r in trainer.chat_log.records if r.aborted
        )

    def test_registry_matches_trainer_recorders(self, traced_run):
        trainer, session = traced_run
        snap = session.registry.snapshot()
        assert snap["counters"]["chat.count"] == len(trainer.chat_log)
        assert snap["counters"]["model_rx.attempted"] == trainer.receive_rate.attempted
        assert snap["counters"]["model_rx.completed"] == trainer.receive_rate.completed
        assert snap["counters"]["trainer.chats"] == trainer.counters.get("chats")
        assert snap["gauges"]["model_rx.rate"] == pytest.approx(
            trainer.receive_rate.rate
        )
        assert snap["counters"]["coreset.merges"] > 0

    def test_export_reload_report(self, traced_run, tmp_path):
        trainer, session = traced_run
        path = export_jsonl(session, tmp_path / "fleet.jsonl")
        trace = load_jsonl(path)
        assert trace.span_counts().get("chat", 0) == len(trainer.chat_log)
        text = report_trace(trace)
        assert "receive rate" in text
        assert f"chats: {len(trainer.chat_log)}" in text
        assert report_session(session).splitlines()[1:] == text.splitlines()[1:]

    def test_transfers_nest_under_chats(self, traced_run):
        trainer, session = traced_run
        chat_ids = {s.span_id for s in session.tracer.find_spans("chat")}
        transfer_events = [
            e for e in session.tracer.events if e.name == "transfer"
        ]
        assert transfer_events
        assert all(e.span_id in chat_ids for e in transfer_events)

    def test_untraced_run_records_nothing(self, fleet_datasets, traces):
        nodes = [
            make_node(vid, ds, coreset_size=10, seed=3)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        trainer = LbChatTrainer(
            nodes, traces, validation,
            LbChatConfig(duration=60.0, train_interval=2.0, wireless_loss=False, seed=1),
        )
        assert hooks.active() is None
        trainer.run()  # must not raise and must not create a session
        assert hooks.active() is None
