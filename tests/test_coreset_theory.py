"""Tests for the coreset size-bound helpers."""

import numpy as np
import pytest

from repro.coreset.theory import (
    coreset_size_bound,
    epsilon_for_size,
    estimate_lipschitz,
    loss_infimum_term,
)


class TestSizeBound:
    def test_grows_with_dataset_logarithmically(self):
        small = coreset_size_bound(1_000, 0.1, ddim=10)
        big = coreset_size_bound(1_000_000, 0.1, ddim=10)
        assert big > small
        assert big < small * 3  # log growth, not linear

    def test_shrinking_epsilon_explodes_size(self):
        loose = coreset_size_bound(1_000, 0.5, ddim=10)
        tight = coreset_size_bound(1_000, 0.05, ddim=10)
        assert tight > loose * 20

    def test_ddim_scales_linearly(self):
        lo = coreset_size_bound(1_000, 0.1, ddim=5, eta=0.5)
        hi = coreset_size_bound(1_000, 0.1, ddim=50, eta=0.5)
        assert 5 < hi / lo < 15

    def test_higher_confidence_costs_more(self):
        assert coreset_size_bound(1_000, 0.1, 10, eta=0.01) > coreset_size_bound(
            1_000, 0.1, 10, eta=0.5
        )

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(ValueError):
            coreset_size_bound(100, epsilon, 10)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            coreset_size_bound(0, 0.1, 10)
        with pytest.raises(ValueError):
            coreset_size_bound(100, 0.1, -1)
        with pytest.raises(ValueError):
            coreset_size_bound(100, 0.1, 10, eta=0.0)


class TestEpsilonForSize:
    def test_roundtrip_consistency(self):
        n, ddim = 10_000, 8
        epsilon = epsilon_for_size(n, 5_000, ddim)
        implied = coreset_size_bound(n, epsilon, ddim)
        assert implied <= 5_000
        slightly_tighter = coreset_size_bound(n, epsilon * 0.9, ddim)
        assert slightly_tighter > 5_000 * 0.8

    def test_bigger_coreset_gives_smaller_epsilon(self):
        n, ddim = 10_000, 8
        assert epsilon_for_size(n, 20_000, ddim) < epsilon_for_size(n, 2_000, ddim)

    def test_tiny_coreset_saturates(self):
        assert epsilon_for_size(10_000, 1, ddim=8) == pytest.approx(0.999)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            epsilon_for_size(100, 0, 10)


class TestEmpiricalEstimates:
    def test_lipschitz_positive_and_restores(self, node):
        from repro.nn.params import get_flat_params

        before = get_flat_params(node.model).copy()
        alpha = estimate_lipschitz(
            node.model,
            lambda m: node.evaluate_model_on(m, node.coreset.data),
            n_probes=4,
        )
        assert alpha > 0
        assert np.array_equal(get_flat_params(node.model), before)

    def test_loss_infimum_mean(self):
        assert loss_infimum_term(np.array([1.0, 3.0])) == 2.0

    def test_loss_infimum_empty_rejected(self):
        with pytest.raises(ValueError):
            loss_infimum_term(np.zeros(0))

    def test_penalty_raises_infimum(self, node):
        """Eq. 6's L2 term keeps the objective away from zero."""
        raw = node.evaluate(node.coreset.data, with_penalty=False)
        penalized = node.evaluate(node.coreset.data, with_penalty=True)
        assert penalized >= raw
