"""Tests for alternative coreset construction strategies (§V)."""

import numpy as np
import pytest

from repro.coreset.strategies import (
    CONSTRUCTORS,
    build_coreset_with,
    kmeans_coreset,
    uniform_coreset,
)
from repro.coreset.verify import relative_coreset_error, weighted_dataset_loss


@pytest.fixture
def losses(node):
    return node.per_sample_losses(node.dataset)


class TestUniform:
    def test_size_exact(self, node, losses):
        coreset = uniform_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert len(coreset) == 15

    def test_weight_mass_preserved(self, node, losses):
        coreset = uniform_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert coreset.data.total_weight() == pytest.approx(
            node.dataset.total_weight(), rel=1e-6
        )

    def test_small_dataset_whole(self, node, losses):
        small = node.dataset.subset(range(4))
        coreset = uniform_coreset(small, losses[:4], 100, np.random.default_rng(0))
        assert len(coreset) == 4

    def test_empty_rejected(self):
        from repro.sim.dataset import DrivingDataset

        with pytest.raises(ValueError):
            uniform_coreset(DrivingDataset(), np.zeros(0), 5, np.random.default_rng(0))

    def test_approximates_loss(self, node, losses):
        errs = [
            relative_coreset_error(
                node.model,
                node.dataset,
                uniform_coreset(node.dataset, losses, 30, np.random.default_rng(s)),
            )
            for s in range(5)
        ]
        assert np.mean(errs) < 0.4


class TestKmeans:
    def test_size_close(self, node, losses):
        coreset = kmeans_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert 10 <= len(coreset) <= 20

    def test_weights_positive(self, node, losses):
        coreset = kmeans_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert (coreset.data.weights > 0).all()

    def test_approximates_loss(self, node, losses):
        errs = [
            relative_coreset_error(
                node.model,
                node.dataset,
                kmeans_coreset(node.dataset, losses, 30, np.random.default_rng(s)),
            )
            for s in range(5)
        ]
        assert np.mean(errs) < 0.4

    def test_loss_mismatch_rejected(self, node):
        with pytest.raises(ValueError):
            kmeans_coreset(node.dataset, np.zeros(3), 10, np.random.default_rng(0))


class TestRegistry:
    def test_all_strategies_runnable(self, node, losses):
        for name in CONSTRUCTORS:
            coreset = build_coreset_with(
                name, node.dataset, losses, 12, np.random.default_rng(1)
            )
            assert len(coreset) > 0
            # Every strategy produces a usable loss estimate.
            full = weighted_dataset_loss(node.model, node.dataset)
            approx = weighted_dataset_loss(node.model, coreset.data)
            assert abs(approx - full) / full < 1.0

    def test_unknown_strategy(self, node, losses):
        with pytest.raises(ValueError):
            build_coreset_with("magic", node.dataset, losses, 5, np.random.default_rng(0))

    def test_node_level_strategy_config(self, fleet_datasets):
        from tests.conftest import make_node

        for strategy in ("layered", "uniform", "kmeans"):
            node = make_node(
                "v0", fleet_datasets["v0"], coreset_strategy=strategy
            )
            assert len(node.coreset) > 0


class TestQuantizeCompressor:
    def test_node_quantize_compressor(self, fleet_datasets):
        from tests.conftest import make_node

        node = make_node("v0", fleet_datasets["v0"], compressor="quantize")
        compressed = node.compress_model(0.25)
        assert compressed.psi == pytest.approx(0.25, abs=0.01)
        assert compressed.is_dense  # quantization keeps every coordinate

    def test_quantized_chat_roundtrip(self, fleet_datasets):
        from tests.conftest import make_node
        from repro.core.chat import pairwise_chat
        from repro.net import ChannelConfig, WirelessModel

        node_a = make_node("v0", fleet_datasets["v0"], compressor="quantize")
        node_b = make_node("v1", fleet_datasets["v1"], seed=6, compressor="quantize")
        for _ in range(40):
            node_b.train_step()
        outcome = pairwise_chat(
            node_a,
            node_b,
            distance_fn=lambda t: 50.0,
            start_time=0.0,
            contact_deadline=60.0,
            wireless=WirelessModel(enabled=False),
            channel=ChannelConfig(),
            time_budget=15.0,
        )
        assert outcome.coresets_exchanged
