"""Unit tests for the command-branched WaypointNet."""

import numpy as np
import pytest

from repro.nn import Adam, make_driving_model, waypoint_l1
from repro.nn.model import N_COMMANDS, WaypointNet
from repro.nn.params import get_flat_params, num_params


BEV_SHAPE = (3, 8, 8)


@pytest.fixture
def model():
    return make_driving_model(BEV_SHAPE, n_waypoints=4, hidden=16, seed=0)


def batch(rng, n=8):
    bev = rng.normal(size=(n, *BEV_SHAPE)).astype(np.float32)
    commands = rng.integers(0, N_COMMANDS, n)
    return bev, commands


def test_output_shape(model):
    rng = np.random.default_rng(0)
    bev, commands = batch(rng)
    out = model.forward(bev, commands)
    assert out.shape == (8, 8)  # 4 waypoints x 2


def test_same_seed_same_init():
    a = make_driving_model(BEV_SHAPE, 4, 16, seed=7)
    b = make_driving_model(BEV_SHAPE, 4, 16, seed=7)
    assert np.array_equal(get_flat_params(a), get_flat_params(b))


def test_different_seed_different_init():
    a = make_driving_model(BEV_SHAPE, 4, 16, seed=7)
    b = make_driving_model(BEV_SHAPE, 4, 16, seed=8)
    assert not np.array_equal(get_flat_params(a), get_flat_params(b))


def test_command_branches_differ(model):
    rng = np.random.default_rng(0)
    bev = rng.normal(size=(1, *BEV_SHAPE)).astype(np.float32)
    outs = [model.forward(bev, np.array([cmd]))[0] for cmd in range(N_COMMANDS)]
    for a in range(N_COMMANDS):
        for b in range(a + 1, N_COMMANDS):
            assert not np.allclose(outs[a], outs[b])


def test_mismatched_commands_rejected(model):
    rng = np.random.default_rng(0)
    bev, _ = batch(rng, 4)
    with pytest.raises(ValueError):
        model.forward(bev, np.zeros((4, 1), dtype=int))
    with pytest.raises(ValueError):
        model.forward(bev, np.zeros(3, dtype=int))


def test_backward_routes_gradients_to_used_head_only(model):
    rng = np.random.default_rng(0)
    bev = rng.normal(size=(4, *BEV_SHAPE)).astype(np.float32)
    commands = np.zeros(4, dtype=int)  # only head 0 used
    out = model.forward(bev, commands)
    model.zero_grad()
    model.backward(np.ones_like(out))
    grads = [np.abs(h.weight.grad).sum() for h in model.heads]
    assert grads[0] > 0
    assert all(g == 0 for g in grads[1:])


def test_training_reduces_loss(model):
    rng = np.random.default_rng(1)
    bev, commands = batch(rng, 32)
    targets = rng.normal(size=(32, 8)).astype(np.float32)
    opt = Adam(model.parameters(), lr=1e-2)
    first = None
    for _ in range(60):
        pred = model.forward(bev, commands)
        scalar, _, grad = waypoint_l1(pred, targets)
        if first is None:
            first = scalar
        model.zero_grad()
        model.backward(grad)
        opt.step()
    assert scalar < first * 0.5


def test_conv_variant_runs():
    model = WaypointNet(BEV_SHAPE, 4, 16, np.random.default_rng(0), use_conv=True)
    rng = np.random.default_rng(0)
    bev, commands = batch(rng, 4)
    out = model.forward(bev, commands)
    assert out.shape == (4, 8)
    model.zero_grad()
    grad_in = model.backward(np.ones_like(out))
    assert grad_in.shape == bev.shape


def test_parameter_count_stable(model):
    # Trunk (MLP): 192->16, 16->16 plus 4 heads 16->8.
    expected = (192 * 16 + 16) + (16 * 16 + 16) + 4 * (16 * 8 + 8)
    assert num_params(model) == expected
