"""Tests for curve analysis helpers and LR schedulers / grad clipping."""

import numpy as np
import pytest

from repro.experiments.analysis import (
    area_under_curve,
    convergence_summary,
    improvement_rate,
    relative_slowdown,
    time_to_threshold,
)
from repro.nn import SGD, Adam
from repro.nn.params import Parameter
from repro.nn.schedulers import CosineLR, StepLR, clip_grad_norm


GRID = np.linspace(0.0, 100.0, 11)
FAST = np.linspace(5.0, 0.5, 11)
SLOW = np.linspace(5.0, 0.5, 11) * 0 + np.linspace(5.0, 1.4, 11)


class TestTimeToThreshold:
    def test_interpolates_between_samples(self):
        grid = np.array([0.0, 10.0])
        curve = np.array([2.0, 0.0])
        assert time_to_threshold(grid, curve, 1.0) == pytest.approx(5.0)

    def test_already_below_at_start(self):
        assert time_to_threshold(GRID, FAST, 10.0) == 0.0

    def test_never_reached(self):
        assert time_to_threshold(GRID, FAST, 0.0) == np.inf

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            time_to_threshold(GRID, FAST[:-1], 1.0)


class TestRelativeSlowdown:
    def test_slower_curve_higher_ratio(self):
        ratio = relative_slowdown(GRID, FAST, SLOW, threshold=2.0)
        assert ratio > 1.0

    def test_equal_curves_ratio_one(self):
        assert relative_slowdown(GRID, FAST, FAST.copy(), threshold=2.0) == pytest.approx(1.0)

    def test_slow_never_converges(self):
        assert relative_slowdown(GRID, FAST, SLOW, threshold=1.0) == np.inf

    def test_neither_converges(self):
        assert relative_slowdown(GRID, FAST, SLOW, threshold=0.01) == 1.0


class TestCurveStats:
    def test_auc_of_constant(self):
        assert area_under_curve(GRID, np.full(11, 2.0)) == pytest.approx(200.0)

    def test_improvement_rate(self):
        assert improvement_rate(GRID, FAST) == pytest.approx(4.5 / 100.0)

    def test_summary_keys(self):
        summary = convergence_summary(GRID, {"a": FAST, "b": SLOW})
        assert set(summary) == {"a", "b"}
        assert set(summary["a"]) == {"final", "time_to_threshold", "auc", "rate"}
        assert summary["a"]["time_to_threshold"] <= summary["b"]["time_to_threshold"]


class TestSchedulers:
    def test_step_lr_decays(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = StepLR(opt, step_size=10, gamma=0.5)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.5)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_step_lr_validation(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=5, gamma=0.0)

    def test_cosine_lr_endpoints(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, total_steps=100, min_lr=0.1)
        sched.step()
        assert opt.lr < 1.0
        for _ in range(200):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_halfway(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineLR(opt, total_steps=2, min_lr=0.0)
        sched.step()
        assert opt.lr == pytest.approx(0.5)


class TestClipGradNorm:
    def test_large_gradient_scaled(self):
        p = Parameter(np.zeros(4))
        p.grad += 3.0  # norm = 6
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(6.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_small_gradient_untouched(self):
        p = Parameter(np.zeros(4))
        p.grad += 0.1
        clip_grad_norm([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], 0.0)
