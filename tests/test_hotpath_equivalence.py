"""Data-path equivalence gates for the array-native storage rewrite.

The expectations in ``tests/data/hotpath_expectations.json`` and the
digests in ``scripts/hotpath_golden.json`` were recorded on the
pre-rewrite tree (Python-list storage, dict loss cache, per-psi
argpartition).  These tests assert the rewritten data layer reproduces
them bit-for-bit: same sampled indices, same per-sample losses, same
end-to-end ``run_method`` results.

To re-baseline after an *intentional* behaviour change:

    PYTHONPATH=src python -c "from tests.test_hotpath_equivalence import _record; _record()"
    PYTHONPATH=src python scripts/hotpath_smoke.py --record
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.node import NodeConfig, VehicleNode
from repro.engine.random import spawn_rng
from repro.nn import make_driving_model
from repro.sim.dataset import DrivingDataset, Frame

EXPECTATIONS_PATH = Path(__file__).parent / "data" / "hotpath_expectations.json"
GOLDEN_PATH = Path(__file__).parent.parent / "scripts" / "hotpath_golden.json"

BEV_SHAPE = (5, 12, 12)
N_WAYPOINTS = 5


def _smoke_module():
    scripts_dir = str(Path(__file__).parent.parent / "scripts")
    if scripts_dir not in sys.path:
        sys.path.insert(0, scripts_dir)
    import hotpath_smoke

    return hotpath_smoke


def _sha(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


def make_synthetic_dataset(n: int = 500) -> DrivingDataset:
    rng = np.random.default_rng(0)
    return DrivingDataset(
        [
            Frame(
                f"f{i}",
                rng.normal(size=BEV_SHAPE).astype(np.float32),
                int(rng.integers(0, 4)),
                rng.normal(size=2 * N_WAYPOINTS).astype(np.float32),
                float(rng.uniform(0.5, 2.0)),
            )
            for i in range(n)
        ]
    )


def make_synthetic_node(dataset: DrivingDataset) -> VehicleNode:
    model = make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=48, seed=0)
    config = NodeConfig(coreset_size=50, learning_rate=1e-3)
    return VehicleNode(
        "bench", model, DrivingDataset(dataset.frames()), config, spawn_rng(7, "bench")
    )


def _sample_batch_record(dataset: DrivingDataset) -> dict:
    out: dict = {}
    for label, balanced in (("balanced", True), ("plain", False)):
        rng = np.random.default_rng(123)
        idx_lists, blobs = [], []
        for _ in range(3):
            bev, commands, targets, idx = dataset.sample_batch(
                64, rng, balance_commands=balanced
            )
            idx_lists.append(np.asarray(idx).tolist())
            blobs.extend(
                np.ascontiguousarray(a).tobytes() for a in (bev, commands, targets)
            )
        out[f"{label}_idx"] = idx_lists
        out[f"{label}_digest"] = _sha(*blobs)
    return out


def _loss_record(node: VehicleNode) -> dict:
    cold = node.per_sample_losses(node.dataset)
    warm = node.per_sample_losses(node.dataset)
    out = {
        "cold_digest": _sha(np.ascontiguousarray(cold, dtype=np.float64).tobytes()),
        "warm_digest": _sha(np.ascontiguousarray(warm, dtype=np.float64).tobytes()),
        "first5": cold[:5].tolist(),
    }
    # Partial-hit path: a subset seeds the cache at a new model version,
    # then the full dataset evaluation mixes cache hits and misses.
    for _ in range(3):
        node.train_step()
    node.per_sample_losses(node.dataset.subset(range(0, len(node.dataset), 7)))
    mixed = node.per_sample_losses(node.dataset)
    out["mixed_digest"] = _sha(np.ascontiguousarray(mixed, dtype=np.float64).tobytes())
    out["evaluate"] = node.evaluate(node.dataset)
    return out


#: Small-but-busy world for the stepping golden: multiple route renewals
#: (nearest_node), car/car and car/pedestrian interactions, curb waits.
WORLD_SEGMENT_CONFIG = dict(
    map_size=400.0,
    grid_n=3,
    n_vehicles=4,
    n_background_cars=6,
    n_pedestrians=12,
    seed=5,
    min_route_length=60.0,
)


def _world_segment_record() -> dict:
    """Digest a world-stepping segment plus one dataset collection.

    Covers the simulation hot path end to end: ``World.step`` /
    ``TrafficManager.step`` neighbor queries, autopilot control, route
    renewal, snapshotting, and ``collect_fleet_datasets`` (BEV
    rendering + waypoint labelling).
    """
    from repro.sim.bev import BevSpec
    from repro.sim.dataset import collect_fleet_datasets
    from repro.sim.world import World, WorldConfig

    world = World(WorldConfig(**WORLD_SEGMENT_CONFIG))
    world.run(30.0)
    fleet = np.array(
        [
            [s.x, s.y, s.heading, s.speed]
            for snap in world.snapshots
            for s in snap.vehicle_states.values()
        ]
    )
    cars = np.vstack([snap.bg_car_positions for snap in world.snapshots])
    peds = np.vstack([snap.pedestrian_positions for snap in world.snapshots])
    out = {
        "n_snapshots": len(world.snapshots),
        "fleet_digest": _sha(np.ascontiguousarray(fleet, dtype=np.float64).tobytes()),
        "cars_digest": _sha(np.ascontiguousarray(cars, dtype=np.float64).tobytes()),
        "peds_digest": _sha(np.ascontiguousarray(peds, dtype=np.float64).tobytes()),
        "fleet_tail": fleet[-1].tolist(),
    }
    world = World(WorldConfig(**WORLD_SEGMENT_CONFIG))
    datasets = collect_fleet_datasets(
        world, 10.0, BevSpec(grid=12, cell=2.5), n_waypoints=3
    )
    blobs: list[bytes] = []
    for vid in sorted(datasets):
        bev, commands, targets, _ = datasets[vid].arrays()
        blobs.extend(
            np.ascontiguousarray(a).tobytes() for a in (bev, commands, targets)
        )
    out["collection_digest"] = _sha(*blobs)
    return out


def _record() -> None:
    """Re-record the expectations file (run on a tree whose behaviour
    is the intended baseline)."""
    dataset = make_synthetic_dataset()
    payload = {
        "sample_batch": _sample_batch_record(dataset),
        "per_sample_losses": _loss_record(make_synthetic_node(dataset)),
        "world_segment": _world_segment_record(),
    }
    EXPECTATIONS_PATH.parent.mkdir(exist_ok=True)
    EXPECTATIONS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"recorded {EXPECTATIONS_PATH}")


@pytest.fixture(scope="module")
def expectations() -> dict:
    return json.loads(EXPECTATIONS_PATH.read_text())


class TestSampleBatchDeterminism:
    def test_matches_recorded(self, expectations):
        got = _sample_batch_record(make_synthetic_dataset())
        want = expectations["sample_batch"]
        for label in ("balanced", "plain"):
            assert got[f"{label}_idx"] == want[f"{label}_idx"], label
            assert got[f"{label}_digest"] == want[f"{label}_digest"], label


class TestPerSampleLossDeterminism:
    def test_matches_recorded(self, expectations):
        got = _loss_record(make_synthetic_node(make_synthetic_dataset()))
        want = expectations["per_sample_losses"]
        assert got["first5"] == pytest.approx(want["first5"], rel=0, abs=0)
        for key in ("cold_digest", "warm_digest", "mixed_digest"):
            assert got[key] == want[key], key
        assert got["evaluate"] == want["evaluate"]


class TestLossCacheBounded:
    """The loss cache compacts on refresh instead of growing forever.

    Pre-rewrite, ``VehicleNode`` kept one dict entry per frame id it had
    *ever* evaluated — peer coresets, validation strides, frames long
    evicted from merged/reduced coresets — so the cache grew without
    bound over a run.  Now stale-version entries are dropped on every
    coreset refresh, bounding the cache by the live frame count.
    """

    @staticmethod
    def _foreign(tag: str, rng: np.random.Generator, n: int = 40) -> DrivingDataset:
        return DrivingDataset(
            [
                Frame(
                    f"{tag}:{i}",
                    rng.normal(size=BEV_SHAPE).astype(np.float32),
                    int(rng.integers(0, 4)),
                    rng.normal(size=2 * N_WAYPOINTS).astype(np.float32),
                    1.0,
                )
                for i in range(n)
            ]
        )

    def test_cache_bounded_by_live_frames(self):
        from repro.coreset import Coreset

        node = make_synthetic_node(make_synthetic_dataset(120))
        rng = np.random.default_rng(42)
        for round_idx in range(6):
            # Churn: frames the local dataset never holds (validation
            # strides, peer-coreset evaluations) enter the cache...
            node.evaluate(self._foreign(f"val{round_idx}", rng))
            node.per_sample_losses(node.dataset.subset(range(0, len(node.dataset), 3)))
            # ...and an absorbed peer coreset grows the dataset itself.
            peer = self._foreign(f"peer{round_idx}", rng, n=20)
            node.absorb_coreset(Coreset(data=peer, source_weights=peer.weights))
            node.train_step()
            node.refresh_coreset()
            assert node.loss_cache_size <= len(node.dataset)
        # The old dict would have held every id ever seen (>480 here).
        assert node.loss_cache_size == len(node.dataset)


class TestWorldSegmentDeterminism:
    """World stepping reproduces the pre-rewrite (brute-force) golden.

    The spatial-grid neighbor queries return a candidate superset that
    is then filtered by the exact distance test in original index order,
    and the struct-of-arrays agent state / batched BEV rendering compute
    the same elementwise arithmetic — so stepping and collection must be
    bit-identical to the recorded O(n^2) baseline.
    """

    def test_matches_recorded(self, expectations):
        got = _world_segment_record()
        want = expectations["world_segment"]
        assert got["n_snapshots"] == want["n_snapshots"]
        assert got["fleet_tail"] == pytest.approx(want["fleet_tail"], rel=0, abs=0)
        for key in ("fleet_digest", "cars_digest", "peds_digest", "collection_digest"):
            assert got[key] == want[key], key


class TestRunMethodBitIdentity:
    """End-to-end: a seeded run reproduces the pre-rewrite golden."""

    def test_lbchat_matches_golden(self):
        smoke = _smoke_module()
        from repro.experiments.runner import RunSpec, build_context, run_method

        golden = json.loads(GOLDEN_PATH.read_text())
        context = build_context(smoke.build_scale())
        spec = RunSpec.for_context(context, "LbChat", wireless=True, seed=smoke.SEED)
        digests = smoke.digest_result(run_method(context, spec))
        assert digests == golden["LbChat"]
