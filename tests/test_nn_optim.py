"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam
from repro.nn.params import Parameter


def quadratic_step(opt, param, target=0.0):
    """One step on f(w) = 0.5 * (w - target)^2."""
    param.zero_grad()
    param.grad += param.data - target
    opt.step()


class TestSGD:
    def test_step_moves_against_gradient(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        quadratic_step(opt, p)
        assert p.data[0] == pytest.approx(0.9)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.3)
        for _ in range(50):
            quadratic_step(opt, p)
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([5.0]))
        heavy = Parameter(np.array([5.0]))
        opt_plain = SGD([plain], lr=0.05)
        opt_heavy = SGD([heavy], lr=0.05, momentum=0.9)
        for _ in range(10):
            quadratic_step(opt_plain, plain)
            quadratic_step(opt_heavy, heavy)
        assert abs(heavy.data[0]) < abs(plain.data[0])

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_zero_grad_clears(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad += 3.0
        opt.zero_grad()
        assert p.grad[0] == 0.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            quadratic_step(opt, p)
        assert abs(p.data[0]) < 1e-2

    def test_first_step_size_close_to_lr(self):
        # With bias correction the first Adam step is ~lr in magnitude.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        quadratic_step(opt, p)
        assert p.data[0] == pytest.approx(0.9, abs=1e-6)

    def test_scale_invariance(self):
        # Adam normalizes by gradient magnitude: big and small gradients
        # produce similar step sizes.
        big = Parameter(np.array([100.0]))
        small = Parameter(np.array([0.01]))
        opt = Adam([big, small], lr=0.1)
        big.grad += 1000.0
        small.grad += 0.0001
        opt.step()
        assert abs(100.0 - big.data[0]) == pytest.approx(
            abs(0.01 - small.data[0]), rel=0.01
        )

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad += 0.0  # no gradient signal at all
        opt.step()
        assert p.data[0] < 10.0  # decay still pulls toward zero

    def test_zero_weight_decay_no_drift(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.0)
        opt.step()  # zero grad, zero decay
        assert p.data[0] == pytest.approx(10.0)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, weight_decay=-0.1)

    def test_two_step_weight_decay_trace(self):
        # Hand-computed AdamW trace: the decoupled decay must shrink the
        # *pre-step* parameters (Loshchilov & Hutter), not the freshly
        # updated ones — decaying post-step would compound the decay
        # with the step just taken.
        lr, wd, b1, b2, eps = 0.1, 0.4, 0.9, 0.999, 1e-8
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=lr, betas=(b1, b2), eps=eps, weight_decay=wd)
        w, m, v = 1.0, 0.0, 0.0
        for t, g in ((1, 0.5), (2, -0.25)):
            p.zero_grad()
            p.grad += g
            opt.step()
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g**2
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            w = w - lr * wd * w  # decay the pre-step parameters
            w = w - lr * m_hat / (np.sqrt(v_hat) + eps)
            # Parameter storage is float32; the float64 hand trace
            # matches to single precision.
            assert p.data[0] == pytest.approx(w, abs=1e-6)

    def test_decay_applies_before_update(self):
        # With a huge gradient the post-step (buggy) order would decay
        # the update itself; the two orders differ by lr*wd*step_size.
        lr, wd = 0.1, 0.5
        p = Parameter(np.array([2.0]))
        opt = Adam([p], lr=lr, weight_decay=wd)
        p.grad += 10.0
        opt.step()
        step_size = lr  # bias-corrected first Adam step is ~lr
        pre_step = 2.0 * (1 - lr * wd) - step_size
        post_step = (2.0 - step_size) * (1 - lr * wd)
        assert p.data[0] == pytest.approx(pre_step, abs=1e-6)
        assert abs(p.data[0] - post_step) > 1e-3

    def test_node_weight_decay_wiring(self, fleet_datasets):
        from tests.conftest import make_node

        node = make_node("v0", fleet_datasets["v0"], train_with_weight_decay=True)
        assert node.optimizer.weight_decay == node.config.penalty.lambda_l2
        node_off = make_node("v0", fleet_datasets["v0"])
        assert node_off.optimizer.weight_decay == 0.0
