"""Fleet-batched training: parameter banks, batched layers, FleetAdam.

The load-bearing guarantees tested here:

* adopting a model into a :class:`ParamBank` rebinds its parameters to
  bank views (zero-copy scatter/gather bridge);
* the batched forward/backward matches per-node layers numerically,
  with finite-difference checks on the analytic gradients;
* a fleet trained through :class:`FleetEngine` is *bit-identical* to the
  same nodes trained per-node in lock-step (MLP trunk), including after
  a staggered snapshot/restore that desynchronizes step counters;
* the fused C Adam kernel and the chunked numpy fallback produce
  byte-identical parameters.
"""

import numpy as np
import pytest

from repro.core.fleet import FleetEngine
from repro.core.node import NodeConfig, VehicleNode
from repro.engine.random import spawn_rng
from repro.nn import Adam, FleetAdam, FleetWaypointNet, ParamBank, make_driving_model
from repro.nn import _fused
from repro.nn.bank import FleetLinear
from repro.nn.params import get_flat_params
from repro.sim.dataset import DrivingDataset, Frame

BEV_SHAPE = (2, 4, 4)
N_WAYPOINTS = 3


def make_dataset(seed: int, n_frames: int) -> DrivingDataset:
    rng = np.random.default_rng(seed)
    return DrivingDataset(
        [
            Frame(
                f"s{seed}-{i}",
                rng.normal(size=BEV_SHAPE).astype(np.float32),
                int(rng.integers(0, 4)),
                rng.normal(size=2 * N_WAYPOINTS).astype(np.float32),
                float(rng.uniform(0.5, 2.0)),
            )
            for i in range(n_frames)
        ]
    )


def build_nodes(n_nodes: int = 4, use_conv: bool = False) -> list[VehicleNode]:
    config = NodeConfig(coreset_size=10, learning_rate=1e-3, batch_size=8)
    return [
        VehicleNode(
            f"v{i}",
            make_driving_model(
                BEV_SHAPE, N_WAYPOINTS, hidden=12, seed=i, use_conv=use_conv
            ),
            make_dataset(100 + i, 30),
            config,
            spawn_rng(5, f"bank-{i}"),
        )
        for i in range(n_nodes)
    ]


def fleet_params(nodes: list[VehicleNode]) -> np.ndarray:
    return np.concatenate([node.flat_params for node in nodes])


class TestParamBank:
    def test_adopt_rebinds_to_views(self):
        models = [make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=8, seed=s) for s in (0, 1)]
        originals = [get_flat_params(m).copy() for m in models]
        bank = ParamBank.from_models(models)
        for row, (model, flat) in enumerate(zip(models, originals)):
            assert np.array_equal(bank.flat[row], flat.astype(np.float32))
            for p in model.parameters():
                assert p.data.base is bank.flat
        # Mutating through the node-side view is visible in the bank.
        models[0].parameters()[0].data[...] = 7.0
        assert np.all(bank.views[0][0] == 7.0)

    def test_detach_returns_owned_copies(self):
        models = [make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=8, seed=s) for s in (0, 1)]
        bank = ParamBank.from_models(models)
        bank.detach(1, models[1])
        flat_before = get_flat_params(models[1]).copy()
        bank.flat[1] = 0.0
        assert np.array_equal(get_flat_params(models[1]), flat_before)

    def test_row_view_read_only(self):
        bank = ParamBank(make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=8, seed=0), 2)
        view = bank.row_view(0)
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_incompatible_model_rejected(self):
        bank = ParamBank(make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=8, seed=0), 2)
        other = make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=16, seed=0)
        with pytest.raises(ValueError):
            bank.adopt(0, other)


class TestFleetForward:
    @pytest.mark.parametrize("use_conv", [False, True])
    def test_forward_matches_per_node(self, use_conv):
        models = [
            make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=8, seed=s, use_conv=use_conv)
            for s in (0, 1, 2)
        ]
        rng = np.random.default_rng(0)
        bev = rng.normal(size=(3, 5, *BEV_SHAPE)).astype(np.float32)
        commands = rng.integers(0, 4, size=(3, 5))
        expected = np.stack(
            [m.forward(bev[i], commands[i]) for i, m in enumerate(models)]
        )
        bank = ParamBank.from_models(models)
        fleet = FleetWaypointNet(bank, models[0])
        out = fleet.forward(bev, commands)
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_shared_batch_broadcasts(self):
        models = [make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=8, seed=s) for s in (0, 1)]
        rng = np.random.default_rng(1)
        bev = rng.normal(size=(6, *BEV_SHAPE)).astype(np.float32)
        commands = rng.integers(0, 4, size=6)
        expected = np.stack([m.forward(bev, commands) for m in models])
        bank = ParamBank.from_models(models)
        fleet = FleetWaypointNet(bank, models[0])
        np.testing.assert_allclose(fleet.forward(bev, commands), expected, atol=1e-6)


class TestFleetGradients:
    def test_fleet_linear_gradients_match_numeric(self):
        rng = np.random.default_rng(2)
        n, b, i, o = 2, 3, 4, 3
        w = rng.normal(size=(n, i, o)).astype(np.float32)
        bias = rng.normal(size=(n, o)).astype(np.float32)
        layer = FleetLinear(w, bias, np.zeros_like(w), np.zeros_like(bias))
        x = rng.normal(size=(n, b, i)).astype(np.float64)

        def loss():
            out, _ = layer.forward(x.astype(np.float32), False)
            return float(out.sum())

        eps = 1e-3
        for arr, grad_arr in ((w, layer.grad_w), (bias, layer.grad_b), (x, None)):
            loss()  # populate caches
            grad_in = layer.backward(np.ones((n, b, o), dtype=np.float32))
            analytic = grad_in if grad_arr is None else grad_arr
            flat = arr.reshape(-1)
            num = np.zeros(flat.size)
            for k in range(flat.size):
                orig = flat[k]
                flat[k] = orig + eps
                hi = loss()
                flat[k] = orig - eps
                lo = loss()
                flat[k] = orig
                num[k] = (hi - lo) / (2 * eps)
            np.testing.assert_allclose(
                analytic.reshape(-1), num, atol=5e-2, rtol=1e-2
            )

    @pytest.mark.parametrize("use_conv", [False, True])
    def test_fleet_net_gradients_match_per_node(self, use_conv):
        # FD through the full net is unreliable (ReLU kinks), so the
        # batched gradients are checked against the per-node analytic
        # ones, which test_nn_layers.py FD-verifies layer by layer.
        models = [
            make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=s, use_conv=use_conv)
            for s in (0, 1)
        ]
        detached = [
            make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=s, use_conv=use_conv)
            for s in (0, 1)
        ]
        bank = ParamBank.from_models(models)
        fleet = FleetWaypointNet(bank, models[0])
        rng = np.random.default_rng(3)
        bev = rng.normal(size=(2, 4, *BEV_SHAPE)).astype(np.float32)
        commands = rng.integers(0, 4, size=(2, 4))
        grad_out = rng.normal(size=(2, 4, 2 * N_WAYPOINTS)).astype(np.float32)
        fleet.forward(bev, commands)
        fleet.backward(grad_out)
        for row, model in enumerate(detached):
            model.forward(bev[row], commands[row])
            model.zero_grad()
            model.backward(grad_out[row])
            expected = np.concatenate(
                [p.grad.reshape(-1) for p in model.parameters()]
            )
            np.testing.assert_allclose(
                bank.grad_flat[row], expected, atol=1e-5
            )

    def test_backward_assigns_not_accumulates(self):
        models = [make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=s) for s in (0, 1)]
        bank = ParamBank.from_models(models)
        fleet = FleetWaypointNet(bank, models[0])
        rng = np.random.default_rng(4)
        bev = rng.normal(size=(2, 4, *BEV_SHAPE)).astype(np.float32)
        commands = rng.integers(0, 4, size=(2, 4))
        grad = rng.normal(size=(2, 4, 2 * N_WAYPOINTS)).astype(np.float32)
        fleet.forward(bev, commands)
        fleet.backward(grad)
        first = bank.grad_flat.copy()
        fleet.forward(bev, commands)
        fleet.backward(grad)  # no zero_grad in between
        assert np.array_equal(bank.grad_flat, first)


class TestFleetEngineEquivalence:
    def test_lockstep_bit_identical_to_per_node(self):
        batched = build_nodes()
        detached = build_nodes()
        engine = FleetEngine.try_build(batched)
        assert engine is not None
        for _ in range(5):
            engine.train_step_all()
        for _ in range(5):
            for node in detached:
                node.train_step()
        assert np.array_equal(fleet_params(batched), fleet_params(detached))

    def test_conv_fleet_matches_within_tolerance(self):
        # Conv gradients batch over a different matrix extent, changing
        # BLAS accumulation order: equal within float tolerance only.
        batched = build_nodes(n_nodes=3, use_conv=True)
        detached = build_nodes(n_nodes=3, use_conv=True)
        engine = FleetEngine.try_build(batched)
        assert engine is not None
        losses = [engine.train_step_all() for _ in range(3)]
        expected = [[node.train_step() for node in detached] for _ in range(3)]
        np.testing.assert_allclose(np.asarray(losses), np.asarray(expected), atol=1e-5)
        np.testing.assert_allclose(
            fleet_params(batched), fleet_params(detached), atol=1e-5
        )

    def test_losses_match_per_node(self):
        batched = build_nodes()
        detached = build_nodes()
        engine = FleetEngine.try_build(batched)
        losses = engine.train_step_all()
        expected = [node.train_step() for node in detached]
        # The scalar reduces as (per_sample * norm).sum() batched vs a
        # dot product per node: same value up to summation order.  The
        # scalar never feeds gradients, so parameters stay bit-equal.
        np.testing.assert_allclose(losses, expected, rtol=1e-6)

    def test_staggered_restore_bit_identical(self):
        # One vehicle resumes from an older snapshot; per-node step
        # counters diverge and FleetAdam must bias-correct row-wise.
        batched = build_nodes()
        detached = build_nodes()
        engine = FleetEngine.try_build(batched)

        def run(nodes, step_all, snap_of, restore_to):
            for _ in range(3):
                step_all()
            snap = snap_of()
            for _ in range(2):
                step_all()
            restore_to(snap)
            for _ in range(3):
                step_all()

        run(
            batched,
            engine.train_step_all,
            batched[1].snapshot,
            batched[1].restore,
        )
        run(
            detached,
            lambda: [node.train_step() for node in detached],
            detached[1].snapshot,
            detached[1].restore,
        )
        assert engine.optim.steps.tolist() == [8, 6, 8, 8]
        assert np.array_equal(fleet_params(batched), fleet_params(detached))

    def test_evaluate_fleet_matches_per_node(self):
        batched = build_nodes()
        detached = build_nodes()
        engine = FleetEngine.try_build(batched)
        engine.train_step_all()
        for node in detached:
            node.train_step()
        validation = make_dataset(99, 20)
        values = engine.evaluate_fleet(validation)
        expected = [
            node.evaluate(validation, with_penalty=False) for node in detached
        ]
        np.testing.assert_allclose(values, expected, atol=1e-7)


class TestFleetAdam:
    def make_bank(self, n_nodes=2):
        models = [make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=s) for s in range(n_nodes)]
        return ParamBank.from_models(models)

    def seeded_grads(self, bank, seed):
        rng = np.random.default_rng(seed)
        bank.grad_flat[...] = rng.normal(size=bank.grad_flat.shape).astype(np.float32)

    def test_lockstep_matches_per_node_adam(self):
        model = make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=0)
        reference = make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=0)
        bank = ParamBank.from_models([model, make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=6, seed=1)])
        fleet_opt = FleetAdam(bank, lr=1e-3, weight_decay=0.01)
        ref_opt = Adam(reference.parameters(), lr=1e-3, weight_decay=0.01)
        for step in range(3):
            self.seeded_grads(bank, step)
            offset = 0
            for p in reference.parameters():
                p.grad[...] = (
                    bank.grad_flat[0, offset : offset + p.data.size]
                    .reshape(p.data.shape)
                    .astype(p.grad.dtype)
                )
                offset += p.data.size
            fleet_opt.step()
            ref_opt.step()
        np.testing.assert_allclose(
            bank.flat[0],
            get_flat_params(reference).astype(np.float32),
            atol=1e-7,
        )

    def test_kernel_and_numpy_paths_byte_identical(self, monkeypatch):
        if _fused.fused_adam_step() is None:
            pytest.skip("no C compiler available for the fused kernel")

        def run(disabled: bool):
            if disabled:
                monkeypatch.setenv(_fused._DISABLE_ENV, "1")
                monkeypatch.setattr(_fused, "_kernel", None)
            else:
                monkeypatch.delenv(_fused._DISABLE_ENV, raising=False)
            bank = self.make_bank()
            opt = FleetAdam(bank, lr=1e-3, weight_decay=0.01)
            for step in range(3):
                self.seeded_grads(bank, step)
                opt.step()
            # Also cover the staggered per-row path.
            opt.steps[1] -= 1
            self.seeded_grads(bank, 99)
            opt.step()
            return bank.flat.tobytes(), opt.m.tobytes(), opt.v.tobytes()

        assert run(disabled=False) == run(disabled=True)

    def test_disable_env_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(_fused._DISABLE_ENV, "1")
        monkeypatch.setattr(_fused, "_kernel", None)
        assert _fused.fused_adam_step() is None

    def test_node_restore_rejects_wrong_size(self):
        bank = self.make_bank()
        opt = FleetAdam(bank)
        with pytest.raises(ValueError):
            opt.node_restore(0, {"step": 1, "m": np.zeros(3), "v": np.zeros(3)})
