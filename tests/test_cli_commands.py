"""CLI command behaviours with the heavy machinery stubbed out."""

import numpy as np
import pytest

from repro import cli


class FakeRecorder:  # mimics TimeSeriesRecorder surface
    @staticmethod
    def keys():
        return ["v0"]

    @staticmethod
    def series(key):
        return np.array([0.0, 100.0]), np.array([5.0, 1.0])


class FakeResult:
    method = "LbChat"
    duration = 100.0
    wireless = True
    seed = 1
    receive_rate = 0.8
    counters = {"chats": 3.0}
    loss_recorder = FakeRecorder()

    def __init__(self):
        from repro.nn import make_driving_model

        class Node:
            model = make_driving_model((3, 8, 8), 4, 16, seed=0)

        self.nodes = [Node()]

    def loss_curve(self, n_points=11):
        grid = np.linspace(0.0, 100.0, n_points)
        return grid, np.linspace(5.0, 1.0, n_points)


def test_cmd_run_with_stubs(monkeypatch, capsys, tmp_path):
    seen = {}

    def fake_run_specs(specs, jobs=1, **kwargs):
        seen["specs"], seen["jobs"] = list(specs), jobs
        return [FakeResult() for _ in specs]

    monkeypatch.setattr("repro.parallel.run_specs", fake_run_specs)
    out_json = tmp_path / "run.json"
    model_path = tmp_path / "model.npz"
    code = cli.main(
        [
            "run",
            "--method",
            "LbChat",
            "--jobs",
            "2",
            "--out",
            str(out_json),
            "--save-model",
            str(model_path),
        ]
    )
    assert code == 0
    assert out_json.exists()
    assert model_path.exists()
    [spec] = seen["specs"]
    assert spec.method == "LbChat" and spec.use_cache
    assert seen["jobs"] == 2
    output = capsys.readouterr().out
    assert "receive rate: 80.0%" in output


def test_cmd_rates_with_stubs(monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.experiments.figures.receive_rates",
        lambda scale, seed, jobs, step_workers=1, overlap_chat=False: {
            "LbChat": 0.77, "DP": 0.47,
        },
    )
    assert cli.main(["rates"]) == 0
    output = capsys.readouterr().out
    assert "77.0%" in output and "47.0%" in output


def test_cmd_fig_with_stubs(monkeypatch, capsys):
    from repro.experiments.figures import FigureResult

    fake = FigureResult(
        title="Fig. 2(b)",
        grid=np.linspace(0, 100, 5),
        curves={"LbChat": np.linspace(5, 1, 5)},
    )
    monkeypatch.setattr(
        "repro.experiments.figures.fig2",
        lambda scale, wireless, seed, jobs, step_workers=1, overlap_chat=False: fake,
    )
    assert cli.main(["fig", "2b"]) == 0
    assert "Fig. 2(b)" in capsys.readouterr().out


def test_cmd_table_with_stubs(monkeypatch, capsys):
    from repro.experiments.tables import CONDITIONS, TableResult

    fake = TableResult(
        title="Table III",
        columns=["LbChat"],
        values={cond: {"LbChat": 90.0} for cond in CONDITIONS},
        receive_rates={"LbChat": 0.8},
    )
    seen = {}

    def fake_table3(scale, seed, jobs, step_workers=1, overlap_chat=False):
        seen["jobs"] = jobs
        return fake

    monkeypatch.setattr("repro.experiments.tables.table3", fake_table3)
    assert cli.main(["table", "3", "--jobs", "4"]) == 0
    assert seen["jobs"] == 4
    output = capsys.readouterr().out
    assert "Table III" in output
    assert "LbChat=80%" in output


def test_cmd_trace_with_stubs(monkeypatch, capsys, tmp_path):
    from repro.telemetry import hooks

    def fake_run_specs(specs, jobs=1, **kwargs):
        # Mimic an instrumented run: the active session sees one chat.
        session = hooks.active()
        assert session is not None, "trace must activate a TelemetrySession"
        session.tracer.start_span("chat", 0.0, i="v0", j="v1")
        session.tracer.end_span(1.0)
        session.registry.counter("chat.count").inc()
        session.registry.counter("chat.completed").inc()
        return [FakeResult() for _ in specs]

    monkeypatch.setattr("repro.parallel.run_specs", fake_run_specs)
    trace_path = tmp_path / "trace.jsonl"
    csv_path = tmp_path / "metrics.csv"
    code = cli.main(
        ["trace", "--out", str(trace_path), "--csv", str(csv_path)]
    )
    assert code == 0
    assert trace_path.exists() and csv_path.exists()
    output = capsys.readouterr().out
    assert "chats: 1" in output
    assert "receive rate: 80.0%" in output
    # The session deactivates after the command finishes.
    from repro.telemetry import hooks as hooks_after

    assert hooks_after.active() is None


def test_run_and_trace_share_flags():
    parser = cli.build_parser()
    run_args = parser.parse_args(["run", "--no-wireless", "--seed", "7", "--jobs", "0"])
    trace_args = parser.parse_args(["trace", "--no-wireless", "--seed", "7", "--jobs", "0"])
    for args in (run_args, trace_args):
        assert args.wireless is False
        assert args.seed == 7
        assert args.jobs == 0
        assert args.cache is True


def test_cmd_report_from_trace(tmp_path, capsys):
    from repro.telemetry import TelemetrySession, export_jsonl

    session = TelemetrySession(label="saved run")
    session.tracer.start_span("chat", 0.0)
    session.tracer.end_span(2.0, status="aborted", aborted="coresets")
    session.registry.counter("chat.count").inc()
    session.registry.counter("chat.aborted.coresets").inc()
    path = export_jsonl(session, tmp_path / "t.jsonl")
    assert cli.main(["report", "--trace", str(path)]) == 0
    output = capsys.readouterr().out
    assert "saved run" in output
    assert "coresets=1" in output
