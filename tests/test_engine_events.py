"""Unit tests for the discrete-event engine."""

import pytest

from repro.engine import Event, Simulator, Timeout
from repro.engine.events import Interrupt


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [5.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    log = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield sim.timeout(delay)
            log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def proc(name, delay):
        while sim.now < 10:
            yield sim.timeout(delay)
            log.append((sim.now, name))

    sim.process(proc("a", 2.0))
    sim.process(proc("b", 3.0))
    sim.run(until=7.0)
    # Ties at t=6.0 break by scheduling order: b armed its 6.0 timeout at
    # t=3.0, before a armed its own at t=4.0.
    assert log == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_beyond_last_event_sets_clock():
    sim = Simulator()
    sim.run(until=9.0)
    assert sim.now == 9.0


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    def trigger():
        yield sim.timeout(4.0)
        event.succeed("payload")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == ["payload"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    event = sim.event()
    caught = []

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1.0)
        event.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert caught == ["boom"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_waiting_on_triggered_event_resumes_immediately():
    sim = Simulator()
    event = sim.event().succeed("late")
    got = []

    def waiter():
        value = yield event
        got.append((sim.now, value))

    sim.process(waiter())
    sim.run()
    assert got == [(0.0, "late")]


def test_process_is_event_with_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 17

    results = []

    def parent():
        value = yield sim.process(child())
        results.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert results == [(2.0, 17)]


def test_interrupt_stops_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("woke")
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    proc = sim.process(sleeper())

    def killer():
        yield sim.timeout(3.0)
        proc.interrupt("reason")

    sim.process(killer())
    sim.run()
    assert log == [("interrupted", 3.0, "reason")]


def test_unhandled_interrupt_ends_process_cleanly():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    proc = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(killer())
    sim.run()
    assert proc.triggered and proc.ok


def test_all_of_collects_all_values():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(5.0, "b")])
        got.append((sim.now, values))

    sim.process(waiter())
    sim.run()
    assert got == [(5.0, ["a", "b"])]


def test_any_of_returns_first():
    sim = Simulator()
    got = []

    def waiter():
        value = yield sim.any_of([sim.timeout(4.0, "slow"), sim.timeout(1.0, "fast")])
        got.append((sim.now, value))

    sim.process(waiter())
    sim.run()
    assert got == [(1.0, "fast")]


def test_call_at_runs_callback_at_time():
    sim = Simulator()
    log = []
    sim.call_at(7.5, lambda: log.append(sim.now))
    sim.run()
    assert log == [7.5]


def test_cannot_schedule_in_past():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        sim.call_at(1.0, lambda: None)

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()


def test_all_of_propagates_failure():
    sim = Simulator()
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield sim.all_of([sim.timeout(5.0), bad])
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    def failer():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("nope"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == [(1.0, "nope")]


def test_any_of_empty_succeeds_immediately():
    sim = Simulator()
    got = []

    def waiter():
        value = yield sim.any_of([])
        got.append((sim.now, value))

    sim.process(waiter())
    sim.run()
    assert got == [(0.0, None)]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    got = []

    def waiter():
        values = yield sim.all_of([])
        got.append(values)

    sim.process(waiter())
    sim.run()
    assert got == [[]]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("late")  # must not raise or re-trigger
    sim.run()
    assert proc.ok


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()
