"""Tests for value assessment (§III-B), Eq. 7 optimization, and Eq. 8."""

import numpy as np
import pytest

from repro.core.aggregate import aggregate_models, aggregation_weights
from repro.core.psi import (
    PsiLossMap,
    build_psi_map,
    optimize_compression,
)
from repro.core.value import assess_value, truncated_gain


class TestValue:
    def test_truncated_gain_nonnegative(self):
        assert truncated_gain(1.0, 2.0) == 0.0
        assert truncated_gain(2.0, 1.0) == 1.0

    def test_value_to_i_uses_peer_coreset(self):
        value = assess_value(
            loss_i_on_ci=0.5, loss_i_on_cj=2.0, loss_j_on_cj=0.4, loss_j_on_ci=0.6
        )
        # i is bad on j's data (2.0) while j is good there (0.4).
        assert value.value_to_i == pytest.approx(1.6)
        assert value.value_to_j == pytest.approx(0.1)

    def test_similar_models_no_value(self):
        value = assess_value(0.5, 0.5, 0.5, 0.5)
        assert value.value_to_i == 0.0
        assert value.value_to_j == 0.0

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            assess_value(-0.1, 1.0, 1.0, 1.0)


class TestPsiLossMap:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            PsiLossMap(np.array([0.5]), np.array([1.0]))

    def test_interpolates_between_samples(self):
        psi_map = PsiLossMap(np.array([0.1, 0.5, 1.0]), np.array([3.0, 1.5, 1.0]))
        mid = psi_map.loss_at(0.75)
        assert 1.0 < mid < 1.5

    def test_clamps_outside_range(self):
        psi_map = PsiLossMap(np.array([0.1, 1.0]), np.array([3.0, 1.0]))
        assert psi_map.loss_at(0.0) == pytest.approx(3.0)
        assert psi_map.loss_at(2.0) == pytest.approx(1.0)

    def test_payload_roundtrip(self):
        psi_map = PsiLossMap(np.array([0.1, 1.0]), np.array([3.0, 1.0]))
        assert psi_map.payload() == [(0.1, 3.0), (1.0, 1.0)]

    def test_build_map_decreasing_overall(self, node):
        psi_map = build_psi_map(
            node.model,
            lambda probe: node.evaluate_model_on(probe, node.coreset.data),
            node.config.nominal_model_bytes,
        )
        # Full model (psi=1) should score no worse than the 5% model.
        assert psi_map.loss_at(1.0) <= psi_map.loss_at(0.05) + 1e-6

    def test_build_map_restores_model(self, node):
        from repro.nn.params import get_flat_params

        before = get_flat_params(node.model).copy()
        build_psi_map(
            node.model,
            lambda probe: node.evaluate_model_on(probe, node.coreset.data),
            node.config.nominal_model_bytes,
        )
        assert np.array_equal(get_flat_params(node.model), before)


def flat_maps(loss_at_one=1.0, loss_at_min=3.0):
    return PsiLossMap(np.array([0.05, 1.0]), np.array([loss_at_min, loss_at_one]))


class TestOptimizeCompression:
    BANDWIDTH = 31e6
    SIZE = 52 * 1024 * 1024

    def test_respects_time_constraint(self):
        decision = optimize_compression(
            flat_maps(),
            flat_maps(),
            loss_i_on_cj=5.0,
            loss_j_on_ci=5.0,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=15.0,
            contact_duration=100.0,
        )
        assert decision.exchange_time <= 15.0 + 1e-9

    def test_valuable_models_get_high_psi(self):
        decision = optimize_compression(
            flat_maps(),
            flat_maps(),
            loss_i_on_cj=10.0,
            loss_j_on_ci=10.0,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=30.0,
            contact_duration=100.0,
        )
        assert decision.psi_i > 0.5 and decision.psi_j > 0.5

    def test_worthless_models_not_sent(self):
        # Receivers already beat the senders everywhere: gains are zero,
        # so the time award drives psi to 0.
        decision = optimize_compression(
            flat_maps(loss_at_one=5.0, loss_at_min=6.0),
            flat_maps(loss_at_one=5.0, loss_at_min=6.0),
            loss_i_on_cj=0.1,
            loss_j_on_ci=0.1,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=15.0,
            contact_duration=100.0,
        )
        assert decision.psi_i == 0.0 and decision.psi_j == 0.0

    def test_asymmetric_value_asymmetric_psi(self):
        decision = optimize_compression(
            flat_maps(),  # i's model: j gains a lot
            flat_maps(loss_at_one=5.0, loss_at_min=6.0),  # j's model: useless to i
            loss_i_on_cj=0.1,
            loss_j_on_ci=10.0,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=15.0,
            contact_duration=100.0,
        )
        assert decision.psi_i > decision.psi_j

    def test_short_contact_limits_exchange(self):
        decision = optimize_compression(
            flat_maps(),
            flat_maps(),
            loss_i_on_cj=10.0,
            loss_j_on_ci=10.0,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=15.0,
            contact_duration=3.0,
        )
        assert decision.exchange_time <= 3.0 + 1e-9

    def test_lambda_c_discourages_marginal_sends(self):
        greedy = optimize_compression(
            flat_maps(loss_at_one=1.0, loss_at_min=1.05),
            flat_maps(loss_at_one=1.0, loss_at_min=1.05),
            loss_i_on_cj=1.1,
            loss_j_on_ci=1.1,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=15.0,
            contact_duration=100.0,
            lambda_c=0.0,
        )
        frugal = optimize_compression(
            flat_maps(loss_at_one=1.0, loss_at_min=1.05),
            flat_maps(loss_at_one=1.0, loss_at_min=1.05),
            loss_i_on_cj=1.1,
            loss_j_on_ci=1.1,
            model_size_bytes=self.SIZE,
            bandwidth_bps=self.BANDWIDTH,
            time_budget=15.0,
            contact_duration=100.0,
            lambda_c=10.0,
        )
        assert frugal.psi_i + frugal.psi_j <= greedy.psi_i + greedy.psi_j


class TestAggregation:
    def test_lower_loss_gets_larger_weight(self):
        w_local, w_received = aggregation_weights(2.0, 1.0)
        assert w_received > w_local
        assert w_local + w_received == pytest.approx(1.0)

    def test_equal_losses_even_split(self):
        assert aggregation_weights(1.0, 1.0) == (0.5, 0.5)

    def test_zero_losses_even_split(self):
        assert aggregation_weights(0.0, 0.0) == (0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            aggregation_weights(-1.0, 1.0)

    def test_aggregate_convex_combination(self):
        local = np.zeros(4, dtype=np.float32)
        received = np.ones(4, dtype=np.float32)
        merged = aggregate_models(local, received, loss_local=3.0, loss_received=1.0)
        assert np.allclose(merged, 0.75)  # received weight = 3/4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_models(np.zeros(3), np.zeros(4), 1.0, 1.0)
