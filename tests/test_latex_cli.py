"""Tests for LaTeX rendering and CLI command plumbing (no training)."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.experiments.latex import latex_curves, latex_table


class TestLatexTable:
    def test_structure(self):
        tex = latex_table(
            "Table II", ["Straight"], ["LbChat", "DP"], {"Straight": {"LbChat": 94.0, "DP": 75.0}}
        )
        assert r"\begin{table}" in tex and r"\end{table}" in tex
        assert "94" in tex and "75" in tex
        assert "Straight & 94 & 75" in tex

    def test_missing_cells_dash(self):
        tex = latex_table("T", ["A"], ["x", "y"], {"A": {"x": 1.0}})
        assert "A & 1 & -" in tex

    def test_escaping(self):
        tex = latex_table("100% & more", ["r_1"], ["c#1"], {"r_1": {"c#1": 5.0}})
        assert r"100\% \& more" in tex
        assert r"r\_1" in tex
        assert r"c\#1" in tex

    def test_label_included(self):
        tex = latex_table("T", ["A"], ["x"], {"A": {"x": 1.0}}, label="tab:t2")
        assert r"\label{tab:t2}" in tex


class TestLatexCurves:
    def test_pgfplots_structure(self):
        grid = np.array([0.0, 10.0])
        tex = latex_curves("Fig 2", grid, {"LbChat": np.array([5.0, 1.0])})
        assert r"\begin{tikzpicture}" in tex
        assert r"\addplot coordinates {(0,5.0000) (10,1.0000)};" in tex
        assert r"\addlegendentry{LbChat}" in tex

    def test_multiple_series(self):
        grid = np.array([0.0, 1.0])
        tex = latex_curves(
            "F", grid, {"a": np.array([1.0, 0.5]), "b": np.array([2.0, 1.5])}
        )
        assert tex.count(r"\addplot") == 2


class TestCliParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["scales"],
            ["run", "--method", "DP", "--seed", "3"],
            ["table", "6"],
            ["fig", "3"],
            ["rates", "--scale", "ci"],
            ["report", "--artifacts", "x"],
            ["eval", "--model", "m.npz", "--trials", "2"],
            ["scenario", "--model", "m.npz", "--comfort"],
        ],
    )
    def test_all_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)

    def test_scenario_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_invalid_table_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])
