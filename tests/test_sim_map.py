"""Unit tests for the town map."""

import numpy as np
import networkx as nx
import pytest

from repro.sim import TownMap


@pytest.fixture(scope="module")
def small_town():
    return TownMap(size=400.0, grid_n=3, seed=0)


class TestConstruction:
    def test_graph_connected(self, small_town):
        assert nx.is_connected(small_town.graph)

    def test_node_count(self, small_town):
        # 3x3 town grid + 4 rural corners.
        assert len(small_town.graph) == 13

    def test_no_rural_option(self):
        town = TownMap(size=400.0, grid_n=3, rural=False, seed=0)
        assert len(town.graph) == 9
        assert all(town.graph.nodes[n]["kind"] == "town" for n in town.graph)

    def test_town_nodes_within_bounds(self, small_town):
        for node in small_town.town_nodes():
            pos = small_town.node_position(node)
            assert 0 <= pos[0] <= 400 and 0 <= pos[1] <= 400

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            TownMap(grid_n=1)


class TestQueries:
    def test_nearest_node(self, small_town):
        node = small_town.town_nodes()[0]
        pos = small_town.node_position(node)
        assert small_town.nearest_node(pos + 1.0) == node

    def test_shortest_path_endpoints(self, small_town):
        nodes = small_town.town_nodes()
        path = small_town.shortest_path(nodes[0], nodes[-1])
        assert path[0] == nodes[0] and path[-1] == nodes[-1]

    def test_jittered_path_valid(self, small_town):
        nodes = small_town.town_nodes()
        rng = np.random.default_rng(0)
        path = small_town.shortest_path(nodes[0], nodes[-1], rng=rng)
        for a, b in zip(path, path[1:]):
            assert small_town.graph.has_edge(a, b)

    def test_on_road_at_edge_midpoint(self, small_town):
        a, b = list(small_town.graph.edges())[0]
        mid = (small_town.node_position(a) + small_town.node_position(b)) / 2
        assert small_town.is_on_road(mid)

    def test_off_road_far_from_everything(self, small_town):
        assert not small_town.is_on_road(np.array([200.0, 1.0]))

    def test_margin_widens_road(self, small_town):
        a, b = list(small_town.graph.edges())[0]
        pa, pb = small_town.node_position(a), small_town.node_position(b)
        direction = pb - pa
        normal = np.array([-direction[1], direction[0]]) / np.linalg.norm(direction)
        point = (pa + pb) / 2 + normal * (small_town.road_half_width + 1.0)
        assert not small_town.is_on_road(point)
        assert small_town.is_on_road(point, margin=2.0)

    def test_occupancy_vectorized_matches_scalar(self, small_town):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 400, size=(200, 2))
        vectorized = small_town.occupancy_at(points)
        scalar = np.array([small_town.is_on_road(p) for p in points])
        assert np.array_equal(vectorized, scalar)

    def test_occupancy_out_of_bounds_false(self, small_town):
        points = np.array([[-10.0, 50.0], [500.0, 50.0]])
        assert not small_town.occupancy_at(points).any()

    def test_random_road_point_on_road(self, small_town):
        rng = np.random.default_rng(3)
        for _ in range(50):
            point = small_town.random_road_point(rng)
            # Allow grid-resolution slack at the pavement edge.
            assert small_town.is_on_road(point, margin=1.0)

    def test_determinism(self):
        a = TownMap(size=400.0, grid_n=3, seed=5)
        b = TownMap(size=400.0, grid_n=3, seed=5)
        for node in a.graph:
            assert np.allclose(a.node_position(node), b.node_position(node))
