"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import compress_topk, decompress, topk_for_psi
from repro.core.aggregate import aggregation_weights
from repro.core.chat import equal_compression_decision
from repro.coreset.construction import allocate_layer_quotas, layer_assignments
from repro.engine import Simulator, TimeSeriesRecorder
from repro.sim.geometry import to_vehicle_frame, to_world_frame, wrap_angle

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
losses_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 200),
    elements=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
)


class TestGeometryProperties:
    @given(finite_floats)
    def test_wrap_angle_in_range(self, theta):
        wrapped = wrap_angle(theta)
        assert -np.pi <= wrapped <= np.pi

    @given(
        hnp.arrays(np.float64, (5, 2), elements=st.floats(-1e3, 1e3)),
        st.floats(-1e3, 1e3),
        st.floats(-1e3, 1e3),
        st.floats(-np.pi, np.pi),
    )
    def test_frame_roundtrip(self, points, px, py, heading):
        pos = np.array([px, py])
        back = to_world_frame(to_vehicle_frame(points, pos, heading), pos, heading)
        assert np.allclose(back, points, atol=1e-6)

    @given(
        hnp.arrays(np.float64, (4, 2), elements=st.floats(-1e3, 1e3)),
        st.floats(-np.pi, np.pi),
    )
    def test_frame_transform_preserves_distances(self, points, heading):
        pos = np.array([7.0, -3.0])
        local = to_vehicle_frame(points, pos, heading)
        d_world = np.linalg.norm(points[0] - points[1])
        d_local = np.linalg.norm(local[0] - local[1])
        assert np.isclose(d_world, d_local, atol=1e-6)


class TestCompressionProperties:
    @given(
        hnp.arrays(np.float32, st.integers(1, 500), elements=st.floats(-100, 100, width=32)),
        st.floats(0.0, 1.0),
    )
    def test_psi_achieved_at_most_target(self, flat, psi):
        compressed = compress_topk(flat, psi, 1_000_000)
        assert compressed.psi <= max(psi, 1e-9) + 1e-9 or compressed.is_dense

    @given(
        hnp.arrays(np.float32, st.integers(2, 300), elements=st.floats(-100, 100, width=32)),
        st.floats(0.05, 0.95),
    )
    def test_kept_values_dominate_dropped(self, flat, psi):
        compressed = compress_topk(flat, psi, 1_000_000)
        if compressed.is_empty or compressed.is_dense:
            return
        kept_min = np.abs(compressed.values).min()
        mask = np.ones(flat.size, dtype=bool)
        mask[compressed.indices] = False
        if mask.any():
            assert np.abs(flat[mask]).max() <= kept_min + 1e-6

    @given(
        hnp.arrays(np.float32, st.integers(1, 300), elements=st.floats(-100, 100, width=32)),
        st.floats(0.0, 1.0),
    )
    def test_decompress_matches_original_on_kept(self, flat, psi):
        compressed = compress_topk(flat, psi, 1_000_000)
        dense = decompress(compressed)
        assert np.array_equal(dense[compressed.indices], flat[compressed.indices])

    @given(st.integers(0, 10_000), st.floats(0.0, 1.0))
    def test_topk_bounded_by_n(self, n, psi):
        assert 0 <= topk_for_psi(n, psi) <= n


class TestCoresetProperties:
    @given(losses_arrays)
    def test_layers_nonnegative_and_bounded(self, losses):
        layers = layer_assignments(losses)
        assert (layers >= 0).all()
        assert layers.max() <= np.log2(max(losses.size, 2)) + 34  # float range guard

    @given(losses_arrays)
    def test_min_loss_sample_in_layer_zero(self, losses):
        layers = layer_assignments(losses)
        assert layers[np.argmin(losses)] == 0

    @given(
        st.lists(st.tuples(st.floats(0.0, 100.0), st.integers(0, 50)), min_size=1, max_size=8),
        st.integers(1, 100),
    )
    def test_quota_invariants(self, layer_spec, target):
        weight = np.array([w for w, _ in layer_spec])
        count = np.array([c for _, c in layer_spec])
        quotas = allocate_layer_quotas(weight, count, target)
        assert (quotas <= count).all()
        assert (quotas >= 0).all()
        nonempty = count > 0
        assert (quotas[nonempty] >= 1).all() or not nonempty.any()


class TestAggregationProperties:
    @given(st.floats(0.0, 1e6), st.floats(0.0, 1e6))
    def test_weights_convex(self, loss_a, loss_b):
        w_local, w_received = aggregation_weights(loss_a, loss_b)
        assert 0.0 <= w_local <= 1.0
        assert w_local + w_received == 1.0 or abs(w_local + w_received - 1.0) < 1e-9

    @given(st.floats(0.001, 1e3), st.floats(0.001, 1e3))
    def test_lower_loss_never_smaller_weight(self, loss_a, loss_b):
        w_local, w_received = aggregation_weights(loss_a, loss_b)
        if loss_a < loss_b:
            assert w_local >= w_received
        elif loss_b < loss_a:
            assert w_received >= w_local


class TestChatDecisionProperties:
    @given(
        st.floats(1e5, 1e9),
        st.floats(1e6, 1e9),
        st.floats(0.1, 100.0),
        st.floats(0.1, 500.0),
    )
    def test_equal_compression_fits_window(self, size, bandwidth, budget, contact):
        decision = equal_compression_decision(size, bandwidth, budget, contact)
        assert decision.exchange_time <= min(budget, contact) + 1e-6
        assert 0.0 <= decision.psi_i <= 1.0
        assert decision.psi_i == decision.psi_j


class TestEngineProperties:
    @settings(max_examples=25)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    def test_clock_monotone_over_random_timeouts(self, delays):
        sim = Simulator()
        observed = []

        def proc():
            for delay in delays:
                yield sim.timeout(delay)
                observed.append(sim.now)

        sim.process(proc())
        sim.run()
        assert observed == sorted(observed)
        assert observed[-1] == sum(delays)


class TestRecorderProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(-10.0, 10.0)),
            min_size=1,
            max_size=30,
        )
    )
    def test_mean_curve_within_value_range(self, samples):
        samples = sorted(samples, key=lambda sv: sv[0])
        rec = TimeSeriesRecorder()
        for t, v in samples:
            rec.record("k", t, v)
        grid = np.linspace(0.0, 100.0, 7)
        curve = rec.mean_curve(grid)
        values = [v for _, v in samples]
        assert curve.min() >= min(values) - 1e-9
        assert curve.max() <= max(values) + 1e-9
