"""Failure-injection tests: the system degrades gracefully, never crashes.

Each scenario breaks one environmental assumption — a dead channel,
lonely vehicles, undersized data, out-of-range traces — and checks the
trainers and protocols survive with sensible outcomes.
"""

import numpy as np
import pytest

from repro.core.chat import pairwise_chat
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.net import ChannelConfig, WirelessModel
from repro.sim.dataset import DrivingDataset
from repro.sim.traces import MobilityTraces
from tests.conftest import make_node


@pytest.fixture()
def validation(fleet_datasets):
    return DrivingDataset([fleet_datasets["v0"].frame(i) for i in range(0, 40, 8)])


def make_fleet(fleet_datasets, **overrides):
    return [
        make_node(vid, ds, coreset_size=8, seed=2, **overrides)
        for vid, ds in sorted(fleet_datasets.items())
    ]


class TestDeadChannel:
    def test_chat_aborts_cleanly_when_out_of_range(self, node_pair):
        outcome = pairwise_chat(
            node_pair[0],
            node_pair[1],
            distance_fn=lambda t: 10_000.0,
            start_time=0.0,
            contact_deadline=60.0,
            wireless=WirelessModel(),
            channel=ChannelConfig(),
            time_budget=15.0,
        )
        assert not outcome.coresets_exchanged
        assert outcome.aborted == "assist"

    def test_total_loss_channel_trainer_survives(self, fleet_datasets, traces, validation):
        """Every link at 100% loss: pure local training, no crash."""
        nodes = make_fleet(fleet_datasets)
        config = LbChatConfig(
            duration=60.0, train_interval=3.0, record_interval=30.0, seed=1
        )
        trainer = LbChatTrainer(nodes, traces, validation, config)
        trainer.wireless = WirelessModel(
            table=((1e9, 1.0),), max_range=1e9, enabled=True
        )
        trainer.run()
        assert trainer.receive_rate.completed == 0
        assert trainer.counters.get("train_steps") > 0

    def test_mid_transfer_departure(self, node_pair):
        """The pair separates right after the coresets: models undelivered."""
        for _ in range(40):
            node_pair[1].train_step()

        def distance(t):
            return 50.0 if t < 2.0 else 5_000.0

        outcome = pairwise_chat(
            node_pair[0],
            node_pair[1],
            distance_fn=distance,
            start_time=0.0,
            contact_deadline=60.0,
            wireless=WirelessModel(),
            channel=ChannelConfig(),
            time_budget=15.0,
        )
        # Coresets (sub-second) made it; the 52 MB models could not.
        assert outcome.coresets_exchanged
        assert not outcome.i_received_model and not outcome.j_received_model
        assert outcome.absorbed_by_i > 0  # partial progress still banked


class TestLonelyFleet:
    def test_single_vehicle_trains_alone(self, fleet_datasets, validation):
        node = make_node("v0", fleet_datasets["v0"], coreset_size=8, seed=2)
        times = np.arange(0, 100, 0.5)
        positions = np.zeros((len(times), 1, 2))
        traces = MobilityTraces(["v0"], times, positions)
        config = LbChatConfig(
            duration=60.0, train_interval=3.0, record_interval=30.0, seed=1
        )
        trainer = LbChatTrainer([node], traces, validation, config)
        trainer.run()
        assert trainer.counters.get("chats") == 0
        assert trainer.counters.get("train_steps") > 0

    def test_zero_range_disables_encounters(self, fleet_datasets, traces, validation):
        nodes = make_fleet(fleet_datasets)
        config = LbChatConfig(
            duration=60.0, train_interval=3.0, record_interval=30.0, seed=1, max_range=0.0
        )
        trainer = LbChatTrainer(nodes, traces, validation, config)
        trainer.run()
        assert trainer.counters.get("chats") == 0


class TestDegenerateData:
    def test_coreset_larger_than_dataset(self, fleet_datasets):
        tiny = fleet_datasets["v0"].subset(range(5))
        node = make_node("v0", tiny, coreset_size=100, seed=2)
        assert len(node.coreset) == 5

    def test_single_frame_dataset(self, fleet_datasets):
        single = fleet_datasets["v0"].subset([0])
        node = make_node("v0", single, coreset_size=8, seed=2)
        loss = node.train_step()
        assert np.isfinite(loss)
        assert len(node.coreset) == 1

    def test_identical_twin_chat_sends_little(self, fleet_datasets):
        """Two identical nodes have nothing to teach each other."""
        node_a = make_node("v0", fleet_datasets["v0"], coreset_size=8, seed=2)
        node_b = make_node("v0b", fleet_datasets["v0"], coreset_size=8, seed=2)
        outcome = pairwise_chat(
            node_a,
            node_b,
            distance_fn=lambda t: 30.0,
            start_time=0.0,
            contact_deadline=120.0,
            wireless=WirelessModel(enabled=False),
            channel=ChannelConfig(),
            time_budget=15.0,
        )
        # Identical models: value gaps are ~0, so Eq. 7 sends (almost)
        # nothing and the exchange wraps up quickly.
        assert outcome.psi.psi_i + outcome.psi.psi_j <= 0.2
        assert outcome.duration < 5.0


class TestTraceEdgeCases:
    def test_queries_beyond_trace_end_clamp(self, traces):
        last = traces.positions[-1, 0]
        assert np.allclose(traces.position(0, 1e9), last)

    def test_trainer_duration_beyond_traces(self, fleet_datasets, traces, validation):
        """Traces shorter than the training horizon: clamped, no crash."""
        nodes = make_fleet(fleet_datasets)
        config = LbChatConfig(
            duration=traces.duration + 50.0,
            train_interval=5.0,
            record_interval=60.0,
            seed=1,
        )
        trainer = LbChatTrainer(nodes, traces, validation, config)
        trainer.run()
        assert trainer.counters.get("train_steps") > 0
