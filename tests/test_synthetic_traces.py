"""Tests for synthetic mobility models and their contact regimes."""

import numpy as np
import pytest

from repro.sim.synthetic_traces import (
    crossing_flows_traces,
    platoon_traces,
    random_waypoint_traces,
)


class TestPlatoon:
    def test_shape_and_ids(self):
        traces = platoon_traces(4, duration=60.0)
        assert traces.positions.shape[1] == 4
        assert traces.vehicle_ids == ["v0", "v1", "v2", "v3"]

    def test_contacts_are_permanent(self):
        traces = platoon_traces(4, duration=60.0, spacing=30.0)
        for t in (0.0, 30.0, 60.0):
            assert len(traces.neighbors(0, t, radius=500.0)) == 3

    def test_convoy_moves_forward(self):
        traces = platoon_traces(3, duration=60.0, speed=10.0)
        start = traces.position(0, 0.0)
        end = traces.position(0, 60.0)
        assert end[0] - start[0] == pytest.approx(600.0, abs=20.0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            platoon_traces(0, 10.0)


class TestCrossingFlows:
    def test_cross_lane_contacts_brief(self):
        traces = crossing_flows_traces(6, duration=200.0, speed=12.0, seed=1)
        # For any east/west pair, time within 500 m is about
        # 2*500/(2*12) ≈ 42 s — far shorter than the 200 s horizon.
        in_range = [
            traces.distance(0, 1, t) <= 500.0 for t in traces.times
        ]
        frac = np.mean(in_range)
        assert frac < 0.6

    def test_same_lane_speeds_match(self):
        traces = crossing_flows_traces(4, duration=100.0, speed=10.0, seed=2)
        d_start = traces.distance(0, 2, 0.0)
        d_end = traces.distance(0, 2, 100.0)
        assert d_end == pytest.approx(d_start, abs=1.0)

    def test_needs_two(self):
        with pytest.raises(ValueError):
            crossing_flows_traces(1, 10.0)


class TestRandomWaypoint:
    def test_stays_in_area(self):
        traces = random_waypoint_traces(5, duration=120.0, area=300.0, seed=3)
        assert traces.positions.min() >= -1e-6
        assert traces.positions.max() <= 300.0 + 1e-6

    def test_vehicles_actually_move(self):
        traces = random_waypoint_traces(5, duration=120.0, seed=3)
        moved = np.linalg.norm(
            traces.positions[-1] - traces.positions[0], axis=1
        )
        assert moved.max() > 50.0

    def test_deterministic(self):
        a = random_waypoint_traces(3, 60.0, seed=9)
        b = random_waypoint_traces(3, 60.0, seed=9)
        assert np.array_equal(a.positions, b.positions)

    def test_speed_bounded(self):
        traces = random_waypoint_traces(4, duration=60.0, speed_range=(5.0, 10.0), seed=0)
        steps = np.linalg.norm(np.diff(traces.positions, axis=0), axis=2)
        assert steps.max() <= 10.0 * traces.interval + 1e-6


class TestTrainerIntegration:
    def test_lbchat_runs_on_synthetic_traces(self, fleet_datasets):
        from repro.core.lbchat import LbChatConfig, LbChatTrainer
        from repro.sim.dataset import DrivingDataset
        from tests.conftest import make_node

        nodes = [
            make_node(vid, ds, coreset_size=8, seed=11)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        traces = platoon_traces(len(nodes), duration=120.0, seed=4)
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        trainer = LbChatTrainer(
            nodes,
            traces,
            validation,
            LbChatConfig(duration=80.0, train_interval=4.0, record_interval=40.0, seed=1),
        )
        trainer.run()
        # A permanent-contact convoy chats plenty.
        assert trainer.counters.get("chats") > 0
