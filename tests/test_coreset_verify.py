"""Tests for empirical ε-coreset verification."""

import numpy as np

from repro.coreset import build_coreset, relative_coreset_error
from repro.coreset.verify import weighted_dataset_loss
from repro.nn.params import get_flat_params


class TestWeightedDatasetLoss:
    def test_positive_on_untrained_model(self, node):
        assert weighted_dataset_loss(node.model, node.dataset) > 0

    def test_weight_sensitivity(self, node):
        base = weighted_dataset_loss(node.model, node.dataset)
        losses = node.per_sample_losses(node.dataset)
        # Up-weight the highest-loss frame heavily: loss must rise.
        weights = np.ones(len(node.dataset))
        weights[np.argmax(losses)] = 100.0
        reweighted = node.dataset.with_weights(weights)
        assert weighted_dataset_loss(node.model, reweighted) > base


class TestRelativeCoresetError:
    def test_whole_dataset_zero_error(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, len(node.dataset) + 10, np.random.default_rng(0))
        err = relative_coreset_error(node.model, node.dataset, coreset)
        assert err < 1e-6

    def test_reasonable_coreset_small_error(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, 40, np.random.default_rng(0))
        err = relative_coreset_error(node.model, node.dataset, coreset)
        assert err < 0.35

    def test_probing_ball_restores_params(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, 20, np.random.default_rng(0))
        before = get_flat_params(node.model).copy()
        relative_coreset_error(
            node.model, node.dataset, coreset, radius=0.5, n_probes=3
        )
        assert np.array_equal(get_flat_params(node.model), before)

    def test_larger_coreset_not_worse_on_average(self, node):
        losses = node.per_sample_losses(node.dataset)
        rng_small = np.random.default_rng(1)
        rng_big = np.random.default_rng(1)
        errs_small, errs_big = [], []
        for trial in range(5):
            small = build_coreset(node.dataset, losses, 8, rng_small)
            big = build_coreset(node.dataset, losses, 48, rng_big)
            errs_small.append(relative_coreset_error(node.model, node.dataset, small))
            errs_big.append(relative_coreset_error(node.model, node.dataset, big))
        assert np.mean(errs_big) <= np.mean(errs_small) + 0.05
