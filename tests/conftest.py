"""Shared fixtures: a small world, datasets, models, and nodes.

Expensive artifacts (the town, collected datasets, traces) are
session-scoped; tests that mutate state build their own copies from the
frozen frames.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.node import NodeConfig, VehicleNode
from repro.engine.random import spawn_rng
from repro.nn import make_driving_model
from repro.sim import BevSpec, TownMap, World, WorldConfig, collect_fleet_datasets
from repro.sim.dataset import DrivingDataset
from repro.sim.traces import MobilityTraces, simulate_traces

BEV_SPEC = BevSpec(grid=12, cell=2.5)
N_WAYPOINTS = 4
MODEL_SHAPE = BEV_SPEC.shape


@pytest.fixture(scope="session")
def world_config() -> WorldConfig:
    return WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=4,
        n_background_cars=4,
        n_pedestrians=10,
        seed=11,
        min_route_length=120.0,
    )


@pytest.fixture(scope="session")
def town(world_config) -> TownMap:
    return TownMap(
        size=world_config.map_size, grid_n=world_config.grid_n, seed=world_config.seed
    )


@pytest.fixture(scope="session")
def fleet_datasets(world_config) -> dict[str, DrivingDataset]:
    world = World(world_config)
    return collect_fleet_datasets(
        world, duration=60.0, bev_spec=BEV_SPEC, n_waypoints=N_WAYPOINTS
    )


@pytest.fixture(scope="session")
def traces(world_config) -> MobilityTraces:
    return simulate_traces(world_config, duration=180.0)


@pytest.fixture()
def small_dataset(fleet_datasets) -> DrivingDataset:
    """A fresh, mutable copy of one vehicle's dataset."""
    source = fleet_datasets["v0"]
    return DrivingDataset(source.frames())


@pytest.fixture()
def model():
    return make_driving_model(MODEL_SHAPE, N_WAYPOINTS, hidden=32, seed=0)


def make_node(
    node_id: str,
    dataset: DrivingDataset,
    coreset_size: int = 12,
    seed: int = 5,
    **config_overrides,
) -> VehicleNode:
    """Build a node with a small model over a copy of ``dataset``."""
    config = NodeConfig(
        coreset_size=coreset_size, learning_rate=1e-3, **config_overrides
    )
    model = make_driving_model(MODEL_SHAPE, N_WAYPOINTS, hidden=32, seed=0)
    return VehicleNode(
        node_id, model, DrivingDataset(dataset.frames()), config, spawn_rng(seed, node_id)
    )


@pytest.fixture()
def node(fleet_datasets) -> VehicleNode:
    return make_node("v0", fleet_datasets["v0"])


@pytest.fixture()
def node_pair(fleet_datasets) -> tuple[VehicleNode, VehicleNode]:
    return (
        make_node("v0", fleet_datasets["v0"]),
        make_node("v1", fleet_datasets["v1"], seed=6),
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
