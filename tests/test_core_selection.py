"""Tests for partner-selection policies."""

import numpy as np
import pytest

from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.core.selection import (
    SELECTION_POLICIES,
    get_selection_policy,
    select_longest_contact,
    select_nearest,
    select_priority,
    select_random,
)
from repro.sim.dataset import DrivingDataset
from repro.sim.synthetic_traces import crossing_flows_traces
from repro.sim.traces import MobilityTraces
from tests.conftest import make_node


@pytest.fixture()
def trainer(fleet_datasets):
    nodes = [
        make_node(vid, ds, coreset_size=8, seed=15)
        for vid, ds in sorted(fleet_datasets.items())
    ]
    traces = crossing_flows_traces(len(nodes), duration=300.0, seed=7)
    validation = DrivingDataset(
        [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
    )
    return LbChatTrainer(
        nodes,
        traces,
        validation,
        LbChatConfig(duration=200.0, train_interval=4.0, seed=1),
    )


class TestRegistry:
    def test_all_policies_present(self):
        assert set(SELECTION_POLICIES) == {
            "random",
            "nearest",
            "longest_contact",
            "priority",
        }

    def test_lookup_unknown(self):
        with pytest.raises(ValueError):
            get_selection_policy("psychic")


class TestPolicies:
    def test_all_return_none_for_no_candidates(self, trainer):
        for policy in SELECTION_POLICIES.values():
            assert policy(trainer, 0, []) is None

    def test_all_return_member_of_candidates(self, trainer):
        candidates = [1, 2, 3]
        for name, policy in SELECTION_POLICIES.items():
            choice = policy(trainer, 0, candidates)
            if name == "priority" and choice is None:
                continue  # Eq. 5 may reject all (everyone unreachable)
            assert choice in candidates, name

    def test_nearest_picks_closest(self, trainer):
        now = trainer.sim.now
        candidates = [1, 2, 3]
        choice = select_nearest(trainer, 0, candidates)
        dists = {j: trainer.traces.distance(0, j, now) for j in candidates}
        assert dists[choice] == min(dists.values())

    def test_longest_contact_picks_same_direction(self, trainer):
        # In crossing flows, even-indexed vehicles travel together ->
        # their mutual contact outlasts any cross-flow contact.
        candidates = [1, 2]
        choice = select_longest_contact(trainer, 0, candidates)
        est_same = trainer.contact_estimate(0, 2, 1.0).contact_duration
        est_cross = trainer.contact_estimate(0, 1, 1.0).contact_duration
        if est_same > est_cross:
            assert choice == 2

    def test_random_uses_node_rng(self, trainer):
        choices = {select_random(trainer, 0, [1, 2, 3, 4, 5]) for _ in range(30)}
        assert len(choices) > 1

    def test_priority_returns_none_when_all_scores_zero(self, trainer):
        # Vehicle 0 vs peers far out of range: z = p = 0 for all, and no
        # contact is predicted at all -> the intentional skip (chatting
        # with an unreachable peer would abort at the assist stage).
        far = trainer.traces.positions.copy()
        trainer.traces.positions[:, 1:, :] += 1e6
        try:
            assert select_priority(trainer, 0, [1, 2]) is None
        finally:
            trainer.traces.positions[:] = far

    def test_priority_falls_back_when_scores_zero_but_contact_exists(
        self, fleet_datasets
    ):
        """Regression: Eq. 5 scores all-zero (z truncates because no
        contact fits the anticipated exchange) used to return None and
        idle the vehicle even though reachable neighbors existed; now it
        falls back to the longest reachable contact."""
        # An absurdly large nominal model makes every exchange infeasible
        # within any contact window -> z = 0 -> score = 0 for everyone.
        nodes = [
            make_node(vid, ds, coreset_size=8, seed=15, nominal_model_bytes=10**14)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        # A convoy: all four vehicles drive together 100 m apart, so every
        # pair stays in radio range for the whole trace.
        times = np.arange(0.0, 300.0, 5.0)
        positions = np.zeros((len(times), len(nodes), 2))
        for j in range(len(nodes)):
            positions[:, j, 0] = times * 10.0
            positions[:, j, 1] = 100.0 * j
        traces = MobilityTraces(
            [n.node_id for n in nodes], times, positions
        )
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        trainer = LbChatTrainer(
            nodes,
            traces,
            validation,
            LbChatConfig(duration=200.0, train_interval=4.0, seed=1),
        )
        candidates = [1, 2, 3]
        reachable = [
            j
            for j in candidates
            if trainer.contact_estimate(0, j, 1.0).contact_duration > 0
        ]
        assert reachable, "fixture must provide at least one reachable peer"
        choice = select_priority(trainer, 0, candidates)
        assert choice in reachable
        assert choice == select_longest_contact(trainer, 0, reachable)


class TestTrainerConfig:
    def test_selection_policy_respected(self, fleet_datasets, traces):
        nodes = [
            make_node(vid, ds, coreset_size=8, seed=16)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        config = LbChatConfig(duration=80.0, train_interval=4.0, seed=1)
        config.selection_policy = "nearest"
        trainer = LbChatTrainer(nodes, traces, validation, config)
        trainer.run()  # exercises the nearest policy end to end

    def test_unknown_policy_raises_at_scan(self, fleet_datasets, traces):
        nodes = [
            make_node(vid, ds, coreset_size=8, seed=17)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        config = LbChatConfig(duration=80.0, train_interval=4.0, seed=1)
        config.selection_policy = "bogus"
        trainer = LbChatTrainer(nodes, traces, validation, config)
        with pytest.raises(ValueError):
            trainer.run()
