"""Unit tests for BEV rasterization."""

import numpy as np
import pytest

from repro.sim import BevSpec, TownMap
from repro.sim.bev import render_bev
from repro.sim.kinematics import VehicleState
from repro.sim.router import RoutePlan


@pytest.fixture(scope="module")
def town():
    return TownMap(size=400.0, grid_n=3, seed=0)


@pytest.fixture(scope="module")
def scene(town):
    a, b = list(town.graph.edges())[0]
    pa, pb = town.node_position(a), town.node_position(b)
    plan = RoutePlan(np.stack([pa, pb]))
    heading = plan.heading_at(0.0)
    mid = (pa + pb) / 2
    state = VehicleState(mid[0], mid[1], heading, 6.0)
    return plan, state


class TestBevSpec:
    def test_shape(self):
        assert BevSpec(grid=16).shape == (5, 16, 16)

    def test_cell_centers_count(self):
        spec = BevSpec(grid=8, cell=2.0)
        centers = spec.cell_centers()
        assert centers.shape == (64, 2)

    def test_ego_near_rear(self):
        spec = BevSpec(grid=10, cell=2.0, back_fraction=0.2)
        centers = spec.cell_centers()
        assert centers[:, 0].min() == pytest.approx(-4.0 + 1.0)
        assert centers[:, 0].max() == pytest.approx(16.0 - 1.0)

    def test_local_to_index_roundtrip(self):
        spec = BevSpec(grid=8, cell=2.0)
        centers = spec.cell_centers()
        rc, valid = spec.local_to_index(centers)
        assert valid.all()
        expected = np.stack(np.meshgrid(np.arange(8), np.arange(8), indexing="ij"), -1)
        assert np.array_equal(rc.reshape(8, 8, 2), expected)

    def test_out_of_grid_invalid(self):
        spec = BevSpec(grid=8, cell=2.0)
        rc, valid = spec.local_to_index(np.array([[1000.0, 0.0]]))
        assert not valid[0]


class TestRenderBev:
    def test_channels_and_dtype(self, town, scene):
        plan, state = scene
        bev = render_bev(town, BevSpec(grid=12), state, plan, np.zeros((0, 2)), np.zeros((0, 2)))
        assert bev.shape == (5, 12, 12)
        assert bev.dtype == np.float32

    def test_road_channel_nonempty_on_road(self, town, scene):
        plan, state = scene
        bev = render_bev(town, BevSpec(grid=12), state, plan, np.zeros((0, 2)), np.zeros((0, 2)))
        assert bev[0].sum() > 5

    def test_route_channel_marks_route(self, town, scene):
        plan, state = scene
        bev = render_bev(town, BevSpec(grid=12), state, plan, np.zeros((0, 2)), np.zeros((0, 2)))
        assert bev[1].sum() > 2
        # Route cells lie on the road.
        assert (bev[0][bev[1] > 0] > 0).mean() > 0.8

    def test_car_ahead_marks_vehicle_channel(self, town, scene):
        plan, state = scene
        from repro.sim.geometry import to_world_frame

        ahead = to_world_frame(np.array([[10.0, 0.0]]), state.position, state.heading)
        bev = render_bev(town, BevSpec(grid=12), state, plan, ahead, np.zeros((0, 2)))
        assert bev[2].sum() == 1.0

    def test_pedestrian_channel_separate(self, town, scene):
        plan, state = scene
        from repro.sim.geometry import to_world_frame

        ped = to_world_frame(np.array([[8.0, 3.0]]), state.position, state.heading)
        bev = render_bev(town, BevSpec(grid=12), state, plan, np.zeros((0, 2)), ped)
        assert bev[3].sum() == 1.0
        assert bev[2].sum() == 0.0

    def test_agents_outside_grid_ignored(self, town, scene):
        plan, state = scene
        far = state.position[None, :] + 500.0
        bev = render_bev(town, BevSpec(grid=12), state, plan, far, far)
        assert bev[2].sum() == 0.0 and bev[3].sum() == 0.0

    def test_speed_plane_normalized(self, town, scene):
        plan, state = scene
        bev = render_bev(town, BevSpec(grid=12), state, plan, np.zeros((0, 2)), np.zeros((0, 2)))
        assert np.allclose(bev[4], state.speed / 12.0)

    def test_rotation_consistency(self, town, scene):
        # A car dead ahead lands in the same BEV cell regardless of the
        # ego's absolute heading.
        plan, state = scene
        from repro.sim.geometry import to_world_frame

        spec = BevSpec(grid=12)
        cells = []
        for heading in (0.0, np.pi / 3, -np.pi / 2):
            s = VehicleState(state.x, state.y, heading, 5.0)
            ahead = to_world_frame(np.array([[10.0, 0.0]]), s.position, heading)
            bev = render_bev(town, spec, s, plan, ahead, np.zeros((0, 2)))
            cells.append(tuple(np.argwhere(bev[2] > 0)[0]))
        assert cells[0] == cells[1] == cells[2]
