"""Tests for the reproduction-report generator."""

from pathlib import Path

from repro.experiments.report import (
    build_report,
    parse_final_losses,
    parse_receive_rates,
)

RATES_TEXT = """Successful model receiving rate (w wireless loss)
==================================================
ProxSkip     69.0%
DFL-DDS      47.1%
DP           47.2%
LbChat       75.0%
"""

CURVES_TEXT = """Fig. 2(b): training loss vs time (w wireless loss)
==================================================
t(s)            0       40       80
------------------------------------
ProxSkip    6.244    4.281    0.870
DFL-DDS     6.244    5.456    3.598
DP          6.302    6.158    1.540
LbChat      6.339    4.708    0.905
"""


class TestParsers:
    def test_parse_rates(self):
        rates = parse_receive_rates(RATES_TEXT)
        assert rates["LbChat"] == 75.0
        assert rates["DFL-DDS"] == 47.1
        assert len(rates) == 4

    def test_parse_final_losses(self):
        finals = parse_final_losses(CURVES_TEXT)
        assert finals["ProxSkip"] == 0.870
        assert finals["LbChat"] == 0.905
        assert "t(s)" not in finals


class TestBuildReport:
    def test_full_report_with_artifacts(self, tmp_path):
        (tmp_path / "receive_rates.txt").write_text(RATES_TEXT)
        (tmp_path / "fig2b_loss_with_wireless.txt").write_text(CURVES_TEXT)
        (tmp_path / "fig3_lbchat_vs_sco.txt").write_text(
            "Fig. 3\n====\nt(s)  0  10\nLbChat 6.0 0.9\nSCO 6.0 0.95\n"
        )
        report = build_report(tmp_path)
        assert "# Reproduction report" in report
        assert "[x] Under wireless loss LbChat converges" in report
        assert "[x] LbChat's receive rate" in report
        assert "[x] LbChat converges at least as fast" in report
        assert "receive_rates.txt" in report

    def test_missing_artifacts_marked_unknown(self, tmp_path):
        report = build_report(tmp_path)
        assert "[?]" in report

    def test_failed_claim_marked(self, tmp_path):
        bad = CURVES_TEXT.replace("0.905", "9.999")
        (tmp_path / "fig2b_loss_with_wireless.txt").write_text(bad)
        report = build_report(tmp_path)
        assert "[ ] Under wireless loss LbChat converges" in report
