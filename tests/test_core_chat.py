"""Tests for the pairwise chat protocol."""

import numpy as np
import pytest

from repro.core.chat import (
    equal_compression_decision,
    estimated_chat_bytes,
    pairwise_chat,
)
from repro.net import ChannelConfig, WirelessModel

CHANNEL = ChannelConfig()
CLEAN = WirelessModel(enabled=False)
LOSSY = WirelessModel()


def run_chat(node_pair, distance=50.0, deadline=60.0, wireless=CLEAN, **kwargs):
    node_a, node_b = node_pair
    return pairwise_chat(
        node_a,
        node_b,
        distance_fn=lambda t: distance,
        start_time=0.0,
        contact_deadline=deadline,
        wireless=wireless,
        channel=CHANNEL,
        time_budget=15.0,
        **kwargs,
    )


class TestFullChat:
    def test_successful_chat_exchanges_everything(self, node_pair):
        outcome = run_chat(node_pair)
        assert outcome.coresets_exchanged
        assert outcome.absorbed_by_i > 0 and outcome.absorbed_by_j > 0
        assert outcome.duration > 0
        assert outcome.psi is not None

    def test_chat_mutates_datasets(self, node_pair):
        node_a, node_b = node_pair
        before_a, before_b = len(node_a.dataset), len(node_b.dataset)
        run_chat(node_pair)
        assert len(node_a.dataset) > before_a
        assert len(node_b.dataset) > before_b

    def test_trained_peer_model_gets_transferred(self, node_pair):
        node_a, node_b = node_pair
        for _ in range(80):
            node_b.train_step()
        outcome = run_chat(node_pair)
        # b's model is valuable to a, so a should have attempted receipt.
        assert outcome.i_attempted
        assert outcome.i_received_model

    def test_out_of_range_aborts_early(self, node_pair):
        outcome = run_chat(node_pair, distance=1000.0, wireless=LOSSY)
        assert outcome.aborted == "assist"
        assert not outcome.coresets_exchanged

    def test_tiny_deadline_cuts_coresets(self, node_pair):
        outcome = run_chat(node_pair, deadline=0.01)
        assert outcome.aborted in ("assist", "coresets")

    def test_duration_bounded_by_budget_plus_overhead(self, node_pair):
        outcome = run_chat(node_pair)
        # Coresets+assist are sub-second; models bounded by T_B.
        assert outcome.duration < 15.0 + 5.0


class TestVariants:
    def test_coreset_only_skips_models(self, node_pair):
        outcome = run_chat(node_pair, coreset_only=True)
        assert outcome.coresets_exchanged
        assert not outcome.i_attempted and not outcome.j_attempted
        assert outcome.psi is None
        assert outcome.absorbed_by_i > 0

    def test_equal_compression_symmetric_psi(self, node_pair):
        node_a, node_b = node_pair
        for _ in range(40):
            node_b.train_step()
        outcome = run_chat(node_pair, equal_compression=True)
        assert outcome.psi.psi_i == pytest.approx(outcome.psi.psi_j)

    def test_mean_aggregation_runs(self, node_pair):
        node_a, node_b = node_pair
        for _ in range(40):
            node_b.train_step()
        outcome = run_chat(node_pair, mean_aggregation=True)
        assert outcome.coresets_exchanged


class TestEdgeCaseRegressions:
    def test_rounded_to_empty_model_is_not_counted_as_reception(
        self, node_pair, monkeypatch
    ):
        """A positive psi whose top-k rounds to zero entries must not be
        counted as an attempted (let alone instantly successful) model
        reception — that inflated the §IV-C receive rate."""
        from repro.core.psi import PsiDecision

        tiny = PsiDecision(psi_i=1e-7, psi_j=1e-7, objective=0.0, exchange_time=0.0)
        monkeypatch.setattr(
            "repro.core.chat.optimize_compression", lambda *a, **k: tiny
        )
        outcome = run_chat(node_pair)
        assert outcome.coresets_exchanged
        assert not outcome.i_attempted and not outcome.j_attempted
        assert not outcome.i_received_model and not outcome.j_received_model

    def test_results_overhead_respects_contact_deadline(self, node_pair):
        """The fixed results-exchange overhead can cross the predicted
        contact deadline; the chat must abort there instead of planning
        Eq. 7 and starting model transfers against a dead pair."""
        node_a, node_b = node_pair
        rate = CHANNEL.bytes_per_second
        transfer_bytes = (
            2 * CHANNEL.assist_info_bytes
            + node_a.coreset.nominal_bytes
            + node_b.coreset.nominal_bytes
            + 2 * 256
        )
        # Deadline clears all three transfers but not the 0.1 s overhead.
        deadline = transfer_bytes / rate + 0.05
        outcome = run_chat(node_pair, deadline=deadline, refresh_coresets=False)
        assert outcome.aborted == "results_overhead"
        assert not outcome.i_attempted and not outcome.j_attempted
        # Coresets made it across before the cutoff and are still absorbed.
        assert outcome.coresets_exchanged
        assert outcome.absorbed_by_i > 0 and outcome.absorbed_by_j > 0

    def test_overhead_not_charged_when_results_transfer_fails(self, node_pair):
        """When the results transfer itself dies, the compute overhead is
        no longer added on top of the failure."""
        node_a, node_b = node_pair
        rate = CHANNEL.bytes_per_second
        transfer_bytes = (
            2 * CHANNEL.assist_info_bytes
            + node_a.coreset.nominal_bytes
            + node_b.coreset.nominal_bytes
        )
        # Deadline lands between the coreset exchange and the (tiny)
        # results payload completing.
        deadline = (transfer_bytes + 256) / rate
        outcome = run_chat(node_pair, deadline=deadline, refresh_coresets=False)
        assert outcome.aborted == "results"
        assert outcome.duration <= deadline + 1e-9


class TestEqualCompressionDecision:
    def test_fills_window(self):
        decision = equal_compression_decision(
            model_size_bytes=52e6, bandwidth_bps=31e6, time_budget=15.0, contact_duration=100.0
        )
        assert decision.exchange_time == pytest.approx(15.0, rel=1e-6)
        assert decision.psi_i == decision.psi_j

    def test_caps_at_one(self):
        decision = equal_compression_decision(
            model_size_bytes=1e6, bandwidth_bps=31e6, time_budget=15.0, contact_duration=100.0
        )
        assert decision.psi_i == 1.0


class TestEstimatedChatBytes:
    def test_includes_coresets_and_model(self, node_pair):
        node_a, node_b = node_pair
        total = estimated_chat_bytes(node_a, node_b, psi_total=1.0)
        expected = (
            node_a.coreset.nominal_bytes
            + node_b.coreset.nominal_bytes
            + node_a.config.nominal_model_bytes
        )
        assert total == expected
