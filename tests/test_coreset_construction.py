"""Unit tests for Algorithm 1: layered-sampling coreset construction."""

import numpy as np
import pytest

from repro.coreset import build_coreset, layer_assignments
from repro.coreset.construction import allocate_layer_quotas
from repro.coreset.verify import weighted_dataset_loss


class TestLayerAssignments:
    def test_minimum_loss_in_layer_zero(self):
        losses = np.array([0.1, 0.5, 2.0, 8.0])
        layers = layer_assignments(losses)
        assert layers[0] == 0

    def test_layers_monotone_with_loss(self):
        losses = np.array([0.1, 0.2, 1.0, 4.0, 16.0])
        layers = layer_assignments(losses)
        assert all(a <= b for a, b in zip(layers, layers[1:]))

    def test_layer_count_logarithmic(self):
        rng = np.random.default_rng(0)
        losses = rng.uniform(0, 100, 1000)
        layers = layer_assignments(losses)
        assert layers.max() <= np.log2(1000) + 2

    def test_uniform_losses_single_layer(self):
        layers = layer_assignments(np.full(10, 3.0))
        assert (layers == 0).all()

    def test_doubling_radius_structure(self):
        # center=0, R=mean; distances R*2^k land in layer k+1.
        losses = np.array([0.0, 1.0, 2.0, 4.0, 8.0])
        layers = layer_assignments(losses)
        radius = losses.mean()
        expected = [0 if (l - 0) <= radius else int(np.floor(np.log2(l / radius))) + 1 for l in losses]
        assert layers.tolist() == expected

    def test_rejects_negative_losses(self):
        with pytest.raises(ValueError):
            layer_assignments(np.array([-1.0, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            layer_assignments(np.zeros(0))


class TestQuotaAllocation:
    def test_every_nonempty_layer_gets_one(self):
        quotas = allocate_layer_quotas(
            np.array([100.0, 1.0, 0.0]), np.array([50, 5, 0]), target_size=4
        )
        assert quotas[0] >= 1 and quotas[1] >= 1 and quotas[2] == 0

    def test_total_close_to_target(self):
        weight = np.array([10.0, 30.0, 60.0])
        count = np.array([100, 100, 100])
        quotas = allocate_layer_quotas(weight, count, 50)
        assert quotas.sum() == 50

    def test_heavier_layers_get_more(self):
        quotas = allocate_layer_quotas(
            np.array([10.0, 90.0]), np.array([100, 100]), 20
        )
        assert quotas[1] > quotas[0]

    def test_never_exceeds_layer_population(self):
        quotas = allocate_layer_quotas(np.array([1.0, 99.0]), np.array([2, 100]), 50)
        assert quotas[0] <= 2

    def test_all_empty(self):
        quotas = allocate_layer_quotas(np.zeros(3), np.zeros(3, dtype=int), 10)
        assert quotas.sum() == 0


class TestBuildCoreset:
    def test_size_close_to_target(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert 10 <= len(coreset) <= 20

    def test_small_dataset_returned_whole(self, node):
        small = node.dataset.subset(range(5))
        losses = node.per_sample_losses(small)
        coreset = build_coreset(small, losses, 100, np.random.default_rng(0))
        assert len(coreset) == 5

    def test_loss_count_mismatch_rejected(self, node):
        with pytest.raises(ValueError):
            build_coreset(node.dataset, np.zeros(3), 10, np.random.default_rng(0))

    def test_empty_dataset_rejected(self):
        from repro.sim.dataset import DrivingDataset

        with pytest.raises(ValueError):
            build_coreset(DrivingDataset(), np.zeros(0), 10, np.random.default_rng(0))

    def test_coreset_approximates_dataset_loss(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, 30, np.random.default_rng(0))
        full = weighted_dataset_loss(node.model, node.dataset)
        approx = weighted_dataset_loss(node.model, coreset.data)
        assert abs(approx - full) / full < 0.5

    def test_coreset_weights_positive(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert (coreset.data.weights > 0).all()

    def test_source_weights_align(self, node):
        losses = node.per_sample_losses(node.dataset)
        coreset = build_coreset(node.dataset, losses, 15, np.random.default_rng(0))
        assert len(coreset.source_weights) == len(coreset)

    def test_layer_weight_ratio_formula(self):
        """w_C for a layer equals layer weight / selected weight sum."""
        from repro.sim.dataset import DrivingDataset, Frame

        frames = [
            Frame(f"f{i}", np.zeros((1, 2, 2), np.float32), 0, np.zeros(2, np.float32), 1.0)
            for i in range(20)
        ]
        ds = DrivingDataset(frames)
        losses = np.full(20, 2.0)  # one layer
        coreset = build_coreset(ds, losses, 5, np.random.default_rng(0))
        # Uniform weights: w_C = 20 / 5 = 4 for every selected sample.
        assert np.allclose(coreset.data.weights, 20 / len(coreset))

    def test_nominal_bytes_scale_with_size(self, node):
        losses = node.per_sample_losses(node.dataset)
        small = build_coreset(node.dataset, losses, 10, np.random.default_rng(0))
        big = build_coreset(node.dataset, losses, 40, np.random.default_rng(0))
        assert big.nominal_bytes > small.nominal_bytes

    def test_deterministic_given_rng(self, node):
        losses = node.per_sample_losses(node.dataset)
        a = build_coreset(node.dataset, losses, 15, np.random.default_rng(42))
        b = build_coreset(node.dataset, losses, 15, np.random.default_rng(42))
        assert a.data.ids == b.data.ids
