"""Tests for online evaluation (conditions, routes, episodes)."""

import numpy as np
import pytest

from repro.nn import make_driving_model
from repro.sim.evaluate import (
    DrivingCondition,
    EvalConfig,
    route_for_condition,
    run_episode,
    success_rate,
)
from repro.sim.router import CMD_STRAIGHT
from repro.engine.random import spawn_rng
from tests.conftest import BEV_SPEC, N_WAYPOINTS


@pytest.fixture(scope="module")
def eval_config():
    return EvalConfig(
        bev_spec=BEV_SPEC,
        n_waypoints=N_WAYPOINTS,
        normal_cars=3,
        normal_pedestrians=6,
        min_navigation_length=250.0,
    )


class TestDrivingCondition:
    def test_traffic_scales(self):
        assert DrivingCondition.STRAIGHT.traffic_scale == 0.0
        assert DrivingCondition.ONE_TURN.traffic_scale == 0.0
        assert DrivingCondition.NAVI_EMPTY.traffic_scale == 0.0
        assert DrivingCondition.NAVI_NORMAL.traffic_scale == 1.0
        assert DrivingCondition.NAVI_DENSE.traffic_scale == pytest.approx(1.2)

    def test_five_conditions(self):
        assert len(list(DrivingCondition)) == 5


class TestRouteForCondition:
    def test_straight_has_no_turns(self, town, eval_config):
        rng = spawn_rng(0, "straight")
        for _ in range(5):
            plan = route_for_condition(town, DrivingCondition.STRAIGHT, rng, eval_config)
            turning = [c for _, c in plan._turns if c != CMD_STRAIGHT]
            assert not turning

    def test_one_turn_has_exactly_one(self, town, eval_config):
        rng = spawn_rng(0, "oneturn")
        plan = route_for_condition(town, DrivingCondition.ONE_TURN, rng, eval_config)
        turning = [c for _, c in plan._turns if c != CMD_STRAIGHT]
        assert len(turning) == 1

    def test_navigation_long_with_turns(self, town, eval_config):
        rng = spawn_rng(0, "navi")
        plan = route_for_condition(town, DrivingCondition.NAVI_EMPTY, rng, eval_config)
        turning = [c for _, c in plan._turns if c != CMD_STRAIGHT]
        assert len(turning) >= 2
        assert plan.total_length >= eval_config.min_navigation_length


class TestRunEpisode:
    def test_untrained_model_fails_gracefully(self, town, eval_config):
        model = make_driving_model(BEV_SPEC.shape, N_WAYPOINTS, 16, seed=0)
        rng = spawn_rng(1, "ep")
        plan = route_for_condition(town, DrivingCondition.STRAIGHT, rng, eval_config)
        result = run_episode(model, town, plan, DrivingCondition.STRAIGHT, eval_config, seed=0)
        assert result.reason in ("success", "collision", "off_road", "timeout")
        assert result.time > 0
        assert result.route_length == plan.total_length

    def test_result_consistency(self, town, eval_config):
        model = make_driving_model(BEV_SPEC.shape, N_WAYPOINTS, 16, seed=0)
        rng = spawn_rng(1, "ep2")
        plan = route_for_condition(town, DrivingCondition.STRAIGHT, rng, eval_config)
        result = run_episode(model, town, plan, DrivingCondition.STRAIGHT, eval_config, seed=0)
        assert result.success == (result.reason == "success")

    def test_deterministic(self, town, eval_config):
        model = make_driving_model(BEV_SPEC.shape, N_WAYPOINTS, 16, seed=0)
        rng_a = spawn_rng(1, "det")
        rng_b = spawn_rng(1, "det")
        plan_a = route_for_condition(town, DrivingCondition.NAVI_NORMAL, rng_a, eval_config)
        plan_b = route_for_condition(town, DrivingCondition.NAVI_NORMAL, rng_b, eval_config)
        result_a = run_episode(model, town, plan_a, DrivingCondition.NAVI_NORMAL, eval_config, seed=5)
        result_b = run_episode(model, town, plan_b, DrivingCondition.NAVI_NORMAL, eval_config, seed=5)
        assert result_a.reason == result_b.reason
        assert result_a.time == pytest.approx(result_b.time)


class TestSuccessRate:
    def test_rate_in_unit_interval(self, town, eval_config):
        model = make_driving_model(BEV_SPEC.shape, N_WAYPOINTS, 16, seed=0)
        rate = success_rate(
            model, town, DrivingCondition.STRAIGHT, n_trials=2, config=eval_config, seed=3
        )
        assert 0.0 <= rate <= 1.0
