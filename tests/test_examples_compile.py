"""Every example and CI script must at least parse and import cleanly.

Full example runs take minutes; these tests catch bit-rot (renamed
APIs, bad imports) cheaply by compiling each script and resolving its
imports without executing ``main()``.  The ``scripts/`` smoke gates
(``trace_smoke.py``, ``parallel_smoke.py``, ``hotpath_smoke.py``) are
covered too, so a refactor cannot silently break CI's gating scripts.
"""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
SCRIPTS = sorted((REPO / "scripts").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES + SCRIPTS, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES + SCRIPTS, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every module an example imports must exist with the used names."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if not node.module.startswith("repro"):
                continue
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module} has no {alias.name}"
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_examples_have_docstrings_and_main():
    for path in EXAMPLES:
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        assert "__main__" in path.read_text(), f"{path.name} lacks a main guard"


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
