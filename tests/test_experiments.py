"""Tests for the experiment harness (configs, runner, render)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    METHOD_NAMES,
    RunSpec,
    build_context,
    get_scale,
    make_config,
    make_nodes,
    make_trainer,
    online_evaluate,
    render_curves,
    render_table,
    run_method,
)
from repro.experiments.configs import CI, PAPER, ExperimentScale
from repro.sim.world import WorldConfig

MICRO = replace(
    CI,
    name="micro-test",
    world=WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=3,
        n_background_cars=2,
        n_pedestrians=5,
        seed=11,
        min_route_length=120.0,
    ),
    collect_duration=40.0,
    trace_duration=150.0,
    train_duration=80.0,
    train_interval=2.0,
    record_interval=20.0,
    coreset_size=8,
    eval_trials=1,
    eval_models=1,
    eval_normal_cars=2,
    eval_normal_pedestrians=5,
)


@pytest.fixture(scope="module")
def context():
    return build_context(MICRO)


class TestConfigs:
    def test_get_scale(self):
        assert get_scale("ci") is CI
        assert get_scale("paper") is PAPER

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_paper_matches_section_iv_a(self):
        assert PAPER.world.n_vehicles == 32
        assert PAPER.world.n_background_cars == 50
        assert PAPER.world.n_pedestrians == 250
        assert PAPER.world.map_size == 1000.0
        assert PAPER.coreset_size == 150


class TestContext:
    def test_context_memoized(self):
        assert build_context(MICRO) is build_context(MICRO)

    def test_datasets_nonempty(self, context):
        assert len(context.datasets) == MICRO.world.n_vehicles
        assert all(len(ds) > 20 for ds in context.datasets.values())

    def test_validation_disjoint_from_locals(self, context):
        val_ids = set(context.validation.ids)
        for dataset in context.datasets.values():
            assert val_ids.isdisjoint(dataset.ids)

    def test_nodes_share_initialization(self, context):
        nodes = make_nodes(context)
        ref = nodes[0].flat_params
        for node in nodes[1:]:
            assert np.array_equal(node.flat_params, ref)

    def test_nodes_have_private_datasets(self, context):
        nodes_a = make_nodes(context)
        nodes_b = make_nodes(context)
        nodes_a[0].dataset.extend([])
        assert nodes_a[0].dataset is not nodes_b[0].dataset


class TestRunner:
    def test_every_method_instantiates(self, context):
        for method in METHOD_NAMES:
            nodes = make_nodes(context)
            trainer = make_trainer(method, nodes, context)
            assert trainer is not None

    def test_unknown_method_rejected(self, context):
        nodes = make_nodes(context)
        with pytest.raises(ValueError):
            make_trainer("FancyNet", nodes, context)

    def test_run_method_produces_curve(self, context):
        spec = RunSpec.for_context(context, "LbChat", wireless=False)
        result = run_method(context, spec)
        grid, curve = result.loss_curve(5)
        assert len(grid) == len(curve) == 5
        assert curve[-1] < curve[0]
        assert result.spec is spec
        assert result.method == "LbChat" and result.wireless is False

    def test_legacy_kwargs_deprecated_but_equivalent(self, context):
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            legacy = run_method(context, "LbChat", wireless=False, seed=1)
        modern = run_method(
            context, RunSpec.for_context(context, "LbChat", wireless=False, seed=1)
        )
        assert np.array_equal(legacy.loss_curve(5)[1], modern.loss_curve(5)[1])
        assert legacy.receive_attempted == modern.receive_attempted

    def test_legacy_unknown_kwarg_rejected(self, context):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                run_method(context, "LbChat", bogus_flag=True)

    def test_spec_rejects_extra_kwargs(self, context):
        spec = RunSpec.for_context(context, "LbChat")
        with pytest.raises(TypeError):
            run_method(context, spec, wireless=False)

    def test_run_spec_validates_method(self, context):
        with pytest.raises(ValueError):
            RunSpec.for_context(context, "FancyNet")

    def test_make_config_validates_fields(self):
        config = make_config("DP", lambda_c=0.2)
        assert config.lambda_c == 0.2
        with pytest.raises(ValueError):
            make_config("FancyNet")
        with pytest.raises(AttributeError, match="bogus"):
            make_config("LbChat", bogus=1)

    def test_coreset_size_override(self, context):
        spec = RunSpec.for_context(context, "LbChat", wireless=False, coreset_size=4)
        result = run_method(context, spec)
        for node in result.nodes:
            assert node.config.coreset_size == 4

    def test_trainer_overrides_applied(self, context):
        spec = RunSpec.for_context(
            context,
            "LbChat",
            wireless=False,
            overrides={"lambda_c": 0.5, "time_budget": 10.0},
        )
        result = run_method(context, spec)
        assert result.trainer.config.lambda_c == 0.5
        assert result.trainer.config.time_budget == 10.0

    def test_trainer_overrides_unknown_field_rejected(self, context):
        spec = RunSpec.for_context(
            context, "LbChat", wireless=False, overrides={"bogus": 1}
        )
        with pytest.raises(AttributeError):
            run_method(context, spec)

    def test_coreset_strategy_override(self, context):
        spec = RunSpec.for_context(
            context, "SCO", wireless=False, coreset_strategy="uniform"
        )
        result = run_method(context, spec)
        for node in result.nodes:
            assert node.config.coreset_strategy == "uniform"

    def test_online_evaluate_shape(self, context):
        from repro.sim.evaluate import DrivingCondition

        result = run_method(context, RunSpec.for_context(context, "SCO", wireless=False))
        rates = online_evaluate(
            result, context, conditions=[DrivingCondition.STRAIGHT]
        )
        assert set(rates) == {"Straight"}
        assert 0.0 <= rates["Straight"] <= 100.0

    def test_select_eval_nodes_median(self, context):
        from repro.experiments.runner import select_eval_nodes

        result = run_method(context, RunSpec.for_context(context, "SCO", wireless=False))
        chosen = select_eval_nodes(result, context)
        assert len(chosen) == context.scale.eval_models
        losses = sorted(
            node.evaluate(context.validation, with_penalty=False)
            for node in result.nodes
        )
        chosen_losses = sorted(
            node.evaluate(context.validation, with_penalty=False) for node in chosen
        )
        # The chosen models are neither the best nor the worst extremes
        # (when the fleet is larger than the selection).
        if len(result.nodes) > context.scale.eval_models + 1:
            assert chosen_losses[-1] <= losses[-1]
            assert chosen_losses[0] >= losses[0]


class TestRender:
    def test_table_contains_all_cells(self):
        text = render_table(
            "T", ["r1", "r2"], ["c1", "c2"], {"r1": {"c1": 1.0, "c2": 2.0}, "r2": {"c1": 3.0}}
        )
        assert "r1" in text and "c2" in text
        assert "-" in text  # missing r2/c2 renders as dash

    def test_table_alignment(self):
        text = render_table("T", ["row"], ["col"], {"row": {"col": 42.0}})
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "42" in text

    def test_curves_render(self):
        grid = np.linspace(0, 100, 11)
        text = render_curves("F", grid, {"m": np.linspace(5, 1, 11)})
        assert "m" in text and "t(s)" in text
