"""Unit tests for top-k sparsification and quantization."""

import numpy as np
import pytest

from repro.compression import (
    compress_quantize,
    compress_topk,
    decompress,
    topk_for_psi,
)

NOMINAL = 52 * 1024 * 1024


class TestTopkForPsi:
    def test_full_psi_keeps_everything(self):
        assert topk_for_psi(1000, 1.0) == 1000

    def test_zero_psi_keeps_nothing(self):
        assert topk_for_psi(1000, 0.0) == 0

    def test_index_value_overhead_halves_k(self):
        # At psi=0.5, pairs cost 8 bytes vs 4 -> k = 0.25 * n.
        assert topk_for_psi(1000, 0.5) == 250

    def test_invalid_psi_rejected(self):
        with pytest.raises(ValueError):
            topk_for_psi(10, 1.5)
        with pytest.raises(ValueError):
            topk_for_psi(10, -0.1)


class TestCompressTopk:
    def test_keeps_largest_magnitudes(self):
        flat = np.array([0.1, -5.0, 0.2, 3.0, -0.05], dtype=np.float32)
        compressed = compress_topk(flat, 0.8, NOMINAL)
        kept = set(compressed.indices.tolist())
        assert 1 in kept and 3 in kept  # the two largest magnitudes

    def test_dense_at_psi_one(self):
        flat = np.arange(10, dtype=np.float32)
        compressed = compress_topk(flat, 1.0, NOMINAL)
        assert compressed.is_dense
        assert compressed.nominal_bytes == NOMINAL
        assert np.array_equal(decompress(compressed), flat)

    def test_empty_at_psi_zero(self):
        compressed = compress_topk(np.ones(10, dtype=np.float32), 0.0, NOMINAL)
        assert compressed.is_empty
        assert compressed.nominal_bytes == 0

    def test_small_positive_psi_rounds_to_empty(self):
        # k = psi * n / 2 rounds to 0: a positive psi can still produce a
        # zero-byte model.  Senders must check nominal_bytes/is_empty, not
        # psi > 0 — see the guard in core.chat (and its regression test).
        compressed = compress_topk(np.ones(10, dtype=np.float32), 0.1, NOMINAL)
        assert compressed.is_empty
        assert compressed.psi == 0.0
        assert compressed.nominal_bytes == 0

    def test_achieved_psi_close_to_target(self):
        flat = np.random.default_rng(0).normal(size=10_000).astype(np.float32)
        compressed = compress_topk(flat, 0.4, NOMINAL)
        assert compressed.psi == pytest.approx(0.4, abs=0.01)
        assert compressed.nominal_bytes == pytest.approx(0.4 * NOMINAL, rel=0.02)

    def test_decompress_zero_fill(self):
        flat = np.array([1.0, -9.0, 2.0, 8.0], dtype=np.float32)
        compressed = compress_topk(flat, 0.9, NOMINAL)
        dense = decompress(compressed)
        for idx in range(4):
            if idx in compressed.indices:
                assert dense[idx] == flat[idx]
            else:
                assert dense[idx] == 0.0

    def test_decompress_overlay_fill(self):
        flat = np.array([1.0, -9.0, 2.0, 8.0], dtype=np.float32)
        fill = np.full(4, 7.0, dtype=np.float32)
        compressed = compress_topk(flat, 0.9, NOMINAL)
        dense = decompress(compressed, fill=fill)
        for idx in range(4):
            expected = flat[idx] if idx in compressed.indices else 7.0
            assert dense[idx] == expected

    def test_decompress_wrong_fill_size_rejected(self):
        compressed = compress_topk(np.ones(4, dtype=np.float32), 0.5, NOMINAL)
        with pytest.raises(ValueError):
            decompress(compressed, fill=np.ones(5, dtype=np.float32))

    def test_indices_sorted(self):
        flat = np.random.default_rng(1).normal(size=100).astype(np.float32)
        compressed = compress_topk(flat, 0.5, NOMINAL)
        assert np.all(np.diff(compressed.indices) > 0)


class TestQuantize:
    def test_32_bits_lossless(self):
        flat = np.random.default_rng(0).normal(size=100).astype(np.float32)
        compressed = compress_quantize(flat, 32, NOMINAL)
        assert np.array_equal(compressed.values, flat)
        assert compressed.psi == 1.0

    def test_8_bits_quarter_size(self):
        flat = np.random.default_rng(0).normal(size=100).astype(np.float32)
        compressed = compress_quantize(flat, 8, NOMINAL)
        assert compressed.psi == 0.25
        assert compressed.nominal_bytes == NOMINAL // 4

    def test_quantization_error_bounded(self):
        flat = np.random.default_rng(0).uniform(-1, 1, 1000).astype(np.float32)
        compressed = compress_quantize(flat, 8, NOMINAL)
        step = 2.0 / 255
        assert np.max(np.abs(compressed.values - flat)) <= step / 2 + 1e-6

    def test_constant_vector_unchanged(self):
        flat = np.full(10, 3.0, dtype=np.float32)
        compressed = compress_quantize(flat, 4, NOMINAL)
        assert np.array_equal(compressed.values, flat)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            compress_quantize(np.ones(4, dtype=np.float32), 0, NOMINAL)
        with pytest.raises(ValueError):
            compress_quantize(np.ones(4, dtype=np.float32), 33, NOMINAL)
