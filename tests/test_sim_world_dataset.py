"""Tests for the world, dataset collection, and mobility traces."""

import numpy as np
import pytest

from repro.nn.model import N_COMMANDS
from repro.sim import World, WorldConfig, collect_fleet_datasets, simulate_traces
from repro.sim.dataset import DrivingDataset, Frame
from tests.conftest import BEV_SPEC, N_WAYPOINTS


class TestWorld:
    def test_snapshots_at_frame_rate(self, world_config):
        world = World(world_config)
        world.run(5.0)
        assert len(world.snapshots) == 10  # 2 fps for 5 s
        times = [snap.time for snap in world.snapshots]
        assert np.allclose(np.diff(times), 0.5)

    def test_vehicles_move(self, world_config):
        world = World(world_config)
        start = world.vehicle_positions().copy()
        world.run(20.0)
        moved = np.linalg.norm(world.vehicle_positions() - start, axis=1)
        assert moved.max() > 10.0

    def test_vehicles_stay_near_roads(self, world_config):
        world = World(world_config)
        world.run(30.0)
        for snap in world.snapshots[::10]:
            for state in snap.vehicle_states.values():
                assert world.town.is_on_road(state.position, margin=4.0)

    def test_snapshot_other_car_positions_excludes_self(self, world_config):
        world = World(world_config)
        world.run(2.0)
        snap = world.snapshots[-1]
        others = snap.other_car_positions("v0")
        expected = (world_config.n_vehicles - 1) + world_config.n_background_cars
        assert others.shape == (expected, 2)
        own = snap.vehicle_states["v0"].position
        assert not np.any(np.all(np.isclose(others, own), axis=1))

    def test_check_collision_detects_overlap(self, world_config):
        world = World(world_config)
        pos = world.vehicles[0].state.position
        assert world.check_collision(pos, exclude_index=None)
        assert not world.check_collision(np.array([-100.0, -100.0]))


class TestDrivingDataset:
    def _frame(self, i, weight=1.0, command=0):
        return Frame(
            frame_id=f"f{i}",
            bev=np.zeros(BEV_SPEC.shape, dtype=np.float32),
            command=command,
            waypoints=np.zeros(2 * N_WAYPOINTS, dtype=np.float32),
            weight=weight,
        )

    def test_add_and_len(self):
        ds = DrivingDataset([self._frame(0), self._frame(1)])
        assert len(ds) == 2

    def test_duplicate_ids_skipped(self):
        ds = DrivingDataset([self._frame(0)])
        ds.add(self._frame(0, weight=99.0))
        assert len(ds) == 1
        assert ds.frame(0).weight == 1.0

    def test_arrays_shapes(self):
        ds = DrivingDataset([self._frame(i) for i in range(3)])
        bev, commands, targets, weights = ds.arrays()
        assert bev.shape == (3, *BEV_SPEC.shape)
        assert commands.shape == (3,)
        assert targets.shape == (3, 2 * N_WAYPOINTS)
        assert weights.shape == (3,)

    def test_empty_arrays_raises(self):
        with pytest.raises(ValueError):
            DrivingDataset().arrays()

    def test_subset_preserves_frames(self):
        ds = DrivingDataset([self._frame(i, command=i % N_COMMANDS) for i in range(6)])
        sub = ds.subset([1, 3])
        assert sub.ids == ["f1", "f3"]

    def test_with_weights(self):
        ds = DrivingDataset([self._frame(i) for i in range(3)])
        reweighted = ds.with_weights(np.array([1.0, 2.0, 3.0]))
        assert reweighted.weights.tolist() == [1.0, 2.0, 3.0]
        assert ds.weights.tolist() == [1.0, 1.0, 1.0]

    def test_with_weights_wrong_length(self):
        ds = DrivingDataset([self._frame(0)])
        with pytest.raises(ValueError):
            ds.with_weights(np.ones(2))

    def test_command_counts(self):
        ds = DrivingDataset(
            [self._frame(i, command=c) for i, c in enumerate([0, 0, 1, 3])]
        )
        assert ds.command_counts().tolist() == [2, 1, 0, 1]

    def test_weighted_sampling_respects_weights(self):
        rng = np.random.default_rng(0)
        ds = DrivingDataset([self._frame(0, weight=1e-9), self._frame(1, weight=1.0)])
        _, _, _, idx = ds.sample_batch(64, rng)
        assert (idx == 1).mean() > 0.95

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            DrivingDataset().sample_batch(4, np.random.default_rng(0))

    def test_pickle_round_trip(self):
        import pickle

        ds = DrivingDataset([self._frame(i, weight=float(i + 1)) for i in range(3)])
        clone = pickle.loads(pickle.dumps(ds))
        assert clone.ids == ds.ids
        assert clone.weights.tolist() == ds.weights.tolist()
        assert np.array_equal(clone.arrays()[0], ds.arrays()[0])
        assert clone.uid != ds.uid  # fresh identity in the receiving process

    def test_unpickles_pre_array_native_state(self):
        """Cached contexts written before the storage rewrite kept
        per-frame Python lists; ``__setstate__`` must migrate them."""
        ds = DrivingDataset.__new__(DrivingDataset)
        ds.__setstate__(
            {
                "_ids": ["a", "b"],
                "_id_set": {"a", "b"},
                "_bev": [np.zeros(BEV_SPEC.shape, dtype=np.float32)] * 2,
                "_commands": [0, 2],
                "_targets": [np.arange(2 * N_WAYPOINTS, dtype=np.float32)] * 2,
                "_weights": [1.0, 2.5],
            }
        )
        assert ds.ids == ["a", "b"]
        assert ds.weights.tolist() == [1.0, 2.5]
        assert ds.arrays()[1].tolist() == [0, 2]


class TestCollectFleetDatasets:
    def test_datasets_per_vehicle(self, fleet_datasets, world_config):
        assert len(fleet_datasets) == world_config.n_vehicles
        for dataset in fleet_datasets.values():
            assert len(dataset) > 50

    def test_waypoints_point_forward_on_average(self, fleet_datasets):
        ds = fleet_datasets["v0"]
        _, _, targets, _ = ds.arrays()
        first_x = targets[:, 0]
        assert first_x.mean() > 0.5

    def test_waypoint_magnitudes_physical(self, fleet_datasets):
        # At <= ~12 m/s and 0.5 s spacing, each hop is <= ~7 m.
        ds = fleet_datasets["v0"]
        _, _, targets, _ = ds.arrays()
        wp = targets.reshape(len(ds), -1, 2)
        hops = np.linalg.norm(np.diff(np.concatenate([np.zeros((len(ds), 1, 2)), wp], axis=1), axis=1), axis=2)
        assert hops.max() < 10.0

    def test_frame_ids_unique(self, fleet_datasets):
        ds = fleet_datasets["v0"]
        assert len(set(ds.ids)) == len(ds)

    def test_multiple_commands_present(self, fleet_datasets):
        pooled = np.zeros(N_COMMANDS, dtype=int)
        for ds in fleet_datasets.values():
            pooled += ds.command_counts()
        assert (pooled > 0).sum() >= 3


class TestTraces:
    def test_shape(self, traces, world_config):
        n_steps, n_vehicles, _ = traces.positions.shape
        assert n_vehicles == world_config.n_vehicles
        assert n_steps == pytest.approx(180.0 / 0.5, abs=2)

    def test_interval(self, traces):
        assert traces.interval == pytest.approx(0.5)

    def test_position_lookup_consistent(self, traces):
        assert np.allclose(traces.position(0, 10.0), traces.positions[traces.index_at(10.0), 0])
        assert np.allclose(traces.position("v0", 10.0), traces.position(0, 10.0))

    def test_pairwise_distances_symmetric(self, traces):
        mat = traces.pairwise_distances(60.0)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_neighbors_excludes_self(self, traces):
        neighbors = traces.neighbors(0, 60.0, radius=1e9)
        assert 0 not in neighbors
        assert len(neighbors) == traces.positions.shape[1] - 1

    def test_future_positions_window(self, traces):
        future = traces.future_positions(0, 10.0, horizon=20.0)
        assert 40 <= len(future) <= 42

    def test_index_clamps(self, traces):
        assert traces.index_at(-5.0) == 0
        assert traces.index_at(1e9) == len(traces.times) - 1
