"""Tests for coreset merge/reduce and the Eq. 6 penalized loss."""

import numpy as np
import pytest

from repro.coreset import (
    PenaltyConfig,
    build_coreset,
    command_loss_entropy,
    merge_coresets,
    penalized_loss,
    reduce_coreset,
)


@pytest.fixture
def two_coresets(node_pair):
    node_a, node_b = node_pair
    rng = np.random.default_rng(0)
    cs_a = build_coreset(node_a.dataset, node_a.per_sample_losses(node_a.dataset), 10, rng)
    cs_b = build_coreset(node_b.dataset, node_b.per_sample_losses(node_b.dataset), 10, rng)
    return cs_a, cs_b


class TestMerge:
    def test_union_size(self, two_coresets):
        a, b = two_coresets
        merged = merge_coresets(a, b)
        assert len(merged) == len(a) + len(b)  # disjoint ids

    def test_weights_preserved(self, two_coresets):
        a, b = two_coresets
        merged = merge_coresets(a, b)
        assert np.allclose(
            merged.data.weights, np.concatenate([a.data.weights, b.data.weights])
        )

    def test_duplicate_ids_kept_once(self, two_coresets):
        a, _ = two_coresets
        merged = merge_coresets(a, a)
        assert len(merged) == len(a)

    def test_source_weights_length(self, two_coresets):
        a, b = two_coresets
        merged = merge_coresets(a, b)
        assert len(merged.source_weights) == len(merged)


class TestReduce:
    def test_reduces_to_target(self, node, two_coresets):
        a, b = two_coresets
        merged = merge_coresets(a, b)
        losses = node.per_sample_losses(merged.data)
        reduced = reduce_coreset(merged, losses, 10, np.random.default_rng(1))
        assert len(reduced) <= 12

    def test_small_coreset_untouched(self, node, two_coresets):
        a, _ = two_coresets
        losses = node.per_sample_losses(a.data)
        out = reduce_coreset(a, losses, 100, np.random.default_rng(1))
        assert out is a


class TestCommandLossEntropy:
    def test_balanced_losses_zero(self):
        losses = np.array([1.0, 1.0, 1.0, 1.0])
        commands = np.array([0, 1, 2, 3])
        assert command_loss_entropy(losses, commands) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_losses_positive(self):
        losses = np.array([10.0, 0.01, 0.01, 0.01])
        commands = np.array([0, 1, 2, 3])
        assert command_loss_entropy(losses, commands) > 0.5

    def test_single_command_zero(self):
        assert command_loss_entropy(np.array([1.0, 2.0]), np.array([0, 0])) == 0.0

    def test_absent_commands_excluded(self):
        # Only two commands present: max imbalance is log(2), not log(4).
        losses = np.array([10.0, 0.001])
        commands = np.array([0, 1])
        value = command_loss_entropy(losses, commands)
        assert value <= np.log(2) + 1e-9

    def test_zero_losses_zero(self):
        assert command_loss_entropy(np.zeros(4), np.array([0, 1, 2, 3])) == 0.0


class TestPenalizedLoss:
    def test_reduces_to_weighted_mean_when_disabled(self, model):
        config = PenaltyConfig(lambda_l2=0.0, lambda_entropy=0.0)
        losses = np.array([1.0, 3.0])
        value = penalized_loss(model, losses, np.array([0, 1]), np.array([1.0, 1.0]), config)
        assert value == pytest.approx(2.0)

    def test_l2_term_added(self, model):
        from repro.nn.params import get_flat_params

        config = PenaltyConfig(lambda_l2=0.5, lambda_entropy=0.0)
        losses = np.array([1.0])
        value = penalized_loss(model, losses, np.array([0]), np.array([1.0]), config)
        expected = 1.0 + 0.5 * np.linalg.norm(get_flat_params(model))
        assert value == pytest.approx(expected, rel=1e-5)

    def test_entropy_term_added(self, model):
        config = PenaltyConfig(lambda_l2=0.0, lambda_entropy=1.0)
        losses = np.array([10.0, 0.01])
        commands = np.array([0, 1])
        value = penalized_loss(model, losses, commands, np.ones(2), config)
        assert value > losses.mean()

    def test_weights_respected(self, model):
        config = PenaltyConfig(lambda_l2=0.0, lambda_entropy=0.0)
        losses = np.array([1.0, 3.0])
        value = penalized_loss(model, losses, np.array([0, 1]), np.array([3.0, 1.0]), config)
        assert value == pytest.approx(1.5)

    def test_zero_weight_sum_rejected(self, model):
        with pytest.raises(ValueError):
            penalized_loss(model, np.ones(2), np.zeros(2, int), np.zeros(2), PenaltyConfig())

    def test_enabled_flag(self):
        assert PenaltyConfig().enabled
        assert not PenaltyConfig(lambda_l2=0.0, lambda_entropy=0.0).enabled
