"""City-scale machinery: registry API, city maps, sharding, budgets.

Covers the ISSUE 8 surface end to end at unit granularity: the open
scale registry (``register_scale``/``iter_scales``/``derived``), the
multi-district city map and its perfect-square district partition, the
sparse sharded spatial grid (exact-equivalence contract with the dense
grid), sharded world stepping (bit-identical to unsharded), the
bounded loss-cache/chat-log budgets, and the propagation of city
fields into trace worlds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import (
    CI,
    CITY,
    PAPER,
    ExperimentScale,
    get_scale,
    iter_scales,
    register_scale,
    scale_names,
)
from repro.sim.map import TownMap
from repro.sim.spatial import ShardedSpatialGrid, SpatialGrid
from repro.sim.world import World, WorldConfig


class TestScaleRegistry:
    def test_builtins_registered(self):
        assert set(scale_names()) >= {"ci", "paper", "city"}
        assert get_scale("ci") is CI
        assert get_scale("paper") is PAPER
        assert get_scale("city") is CITY

    def test_iter_scales_matches_names(self):
        assert tuple(s.name for s in iter_scales()) == scale_names()

    def test_unknown_scale_error_lists_registry(self):
        with pytest.raises(ValueError, match="city"):
            get_scale("galaxy")

    def test_third_party_registration_roundtrip(self):
        scale = CI.derived("unit-test-scale", coreset_size=5)
        try:
            assert register_scale(scale) is scale
            assert get_scale("unit-test-scale") is scale
            assert "unit-test-scale" in scale_names()
            # Duplicate names are an error unless explicitly replaced.
            with pytest.raises(ValueError, match="already registered"):
                register_scale(CI.derived("unit-test-scale"))
            replacement = CI.derived("unit-test-scale", coreset_size=7)
            register_scale(replacement, replace=True)
            assert get_scale("unit-test-scale").coreset_size == 7
        finally:
            from repro.experiments import configs

            configs._SCALES.pop("unit-test-scale", None)

    def test_register_rejects_bad_values(self):
        with pytest.raises(TypeError):
            register_scale("paper")
        with pytest.raises(ValueError):
            register_scale(CI.derived(""))


class TestDerivedScales:
    def test_plain_overrides(self):
        scale = PAPER.derived("custom", coreset_size=99)
        assert scale.name == "custom"
        assert scale.coreset_size == 99
        assert scale.world is PAPER.world  # untouched world is shared

    def test_nested_world_mapping_override(self):
        scale = PAPER.derived("custom", world=dict(n_vehicles=7))
        assert scale.world.n_vehicles == 7
        # Every other world field is inherited, not reset.
        assert scale.world.map_size == PAPER.world.map_size
        assert scale.world.seed == PAPER.world.seed

    def test_world_config_override(self):
        world = WorldConfig(map_size=123.0, grid_n=3, n_vehicles=2)
        assert PAPER.derived("custom", world=world).world is world

    def test_world_rejects_other_types(self):
        with pytest.raises(TypeError):
            PAPER.derived("custom", world=42)

    def test_builtin_scales_are_derived_from_paper(self):
        # CI and CITY are expressed as PAPER.derived(...) overrides;
        # spot-check fields that must inherit.
        assert CI.n_waypoints == PAPER.n_waypoints
        assert CITY.n_waypoints == PAPER.n_waypoints
        assert CITY.world.n_districts == 9
        assert CITY.world.shard_stepping is True
        assert CITY.loss_cache_budget > 0 and CITY.chat_log_budget > 0

    def test_fingerprint_distinguishes_derived_worlds(self):
        from repro.experiments.io import scale_fingerprint

        base = PAPER.derived("fp-base")
        tweaked = PAPER.derived("fp-base", world=dict(city_blocks=2))
        assert scale_fingerprint(base) == scale_fingerprint(PAPER.derived("fp-base"))
        assert scale_fingerprint(base) != scale_fingerprint(tweaked)


class TestCityMap:
    @pytest.fixture(scope="class")
    def city(self):
        return TownMap(size=1200.0, grid_n=4, seed=5, districts_per_side=3)

    def test_connected_with_arterials(self, city):
        import networkx as nx

        assert nx.is_connected(city.graph)
        arterials = [
            (a, b) for a, b, d in city.graph.edges(data=True) if d.get("arterial")
        ]
        assert len(arterials) >= 2 * 3 * 2 * 2  # 2 lanes x (3x2 block seams) x 2 axes
        # Town nodes exist in every block.
        blocks = {
            (n[1], n[2])
            for n, d in city.graph.nodes(data=True)
            if d.get("kind") == "town"
        }
        assert blocks == {(i, j) for i in range(3) for j in range(3)}

    def test_town_map_unchanged_by_default(self):
        a = TownMap(size=500.0, grid_n=3, seed=2)
        b = TownMap(size=500.0, grid_n=3, seed=2, districts_per_side=1)
        assert sorted(a.graph.nodes) == sorted(b.graph.nodes)

    def test_rejects_bad_districts(self):
        with pytest.raises(ValueError):
            TownMap(size=500.0, grid_n=3, seed=2, districts_per_side=0)

    def test_district_of_perfect_square(self, city):
        n_districts = 9
        seen = set()
        rng = np.random.default_rng(0)
        for point in rng.uniform(0, city.size, size=(500, 2)):
            d = city.district_of(point, n_districts)
            assert 0 <= d < n_districts
            seen.add(d)
        assert seen == set(range(n_districts))
        # Points beyond the map edge clamp into the border districts.
        assert city.district_of(np.array([-50.0, -50.0]), 9) == 0
        assert city.district_of(np.array([1e6, 1e6]), 9) == 8

    def test_district_of_rejects_non_square(self, city):
        with pytest.raises(ValueError, match="perfect square"):
            city.district_of(np.array([10.0, 10.0]), 3)

    def test_district_nodes_partition_all_nodes(self, city):
        groups = [city.district_nodes(d, 9) for d in range(9)]
        assert all(groups)
        total = sum(len(g) for g in groups)
        assert total == city.graph.number_of_nodes()


class TestShardedSpatialGrid:
    def test_matches_dense_grid(self):
        rng = np.random.default_rng(4)
        positions = rng.uniform(-500, 3500, size=(700, 2))
        dense = SpatialGrid(positions)
        sharded = ShardedSpatialGrid(positions)
        for center in rng.uniform(-500, 3500, size=(25, 2)):
            for radius in (5.0, 60.0, 400.0, 2000.0):
                np.testing.assert_array_equal(
                    sharded.query_radius(center, radius),
                    dense.query_radius(center, radius),
                )
                q = sharded.query(center, radius)
                assert np.all(np.diff(q) > 0)
                assert set(dense.query_radius(center, radius)) <= set(q.tolist())

    def test_empty(self):
        grid = ShardedSpatialGrid(np.zeros((0, 2)))
        assert grid.query(np.array([0.0, 0.0]), 10.0).shape == (0,)

    def test_sharded_world_step_is_bit_identical(self):
        config = WorldConfig(
            map_size=500.0, grid_n=3, n_vehicles=4, n_background_cars=4,
            n_pedestrians=10, seed=13, min_route_length=120.0,
        )
        plain = World(config)
        from dataclasses import replace

        sharded = World(replace(config, shard_stepping=True))
        for _ in range(30):
            plain.step()
            sharded.step()
        np.testing.assert_array_equal(
            np.asarray(plain.vehicle_positions()),
            np.asarray(sharded.vehicle_positions()),
        )
        np.testing.assert_array_equal(
            np.asarray(plain.traffic.car_positions()),
            np.asarray(sharded.traffic.car_positions()),
        )


class TestBoundedBudgets:
    def _node(self, budget, n_frames=40):
        from repro.core.node import NodeConfig, VehicleNode
        from repro.engine.random import spawn_rng
        from repro.nn import make_driving_model
        from repro.sim.dataset import DrivingDataset, Frame

        bev_shape, n_waypoints = (4, 8, 8), 3
        rng = np.random.default_rng(0)
        frames = [
            Frame(
                f"b-{i}",
                rng.normal(size=bev_shape).astype(np.float32),
                int(rng.integers(0, 4)),
                rng.normal(size=2 * n_waypoints).astype(np.float32),
                1.0,
            )
            for i in range(n_frames)
        ]
        config = NodeConfig(coreset_size=8, loss_cache_budget=budget)
        model = make_driving_model(bev_shape, n_waypoints, hidden=16, seed=0)
        return VehicleNode(
            "budget", model, DrivingDataset(frames), config, spawn_rng(7, "budget")
        )

    def test_loss_cache_never_exceeds_budget_over_long_run(self):
        node = self._node(budget=16, n_frames=48)
        for round_ in range(12):
            node.per_sample_losses(node.dataset)
            assert node.loss_cache_size <= 16, f"round {round_}"
            node.train_step()  # bumps model_version, stales the cache
        node.per_sample_losses(node.dataset)
        assert node.loss_cache_size <= 16

    def test_zero_budget_is_unbounded(self):
        node = self._node(budget=0, n_frames=48)
        node.per_sample_losses(node.dataset)
        assert node.loss_cache_size == 48

    def test_chat_log_ring_eviction(self):
        from repro.core.chatlog import ChatLog, ChatRecord

        log = ChatLog(max_records=5)
        for i in range(23):
            log.append(
                ChatRecord(
                    time=float(i), initiator="a", partner="b", duration=1.0,
                    coresets_exchanged=True, psi_i=0.1, psi_j=0.1,
                    i_received=True, j_received=True, absorbed=2, aborted="",
                )
            )
            assert len(log) <= 5
        assert log.dropped == 18
        # The survivors are the newest records, in order.
        assert [r.time for r in log.records] == [18.0, 19.0, 20.0, 21.0, 22.0]

    def test_unbounded_chat_log_drops_nothing(self):
        from repro.core.chatlog import ChatLog, ChatRecord

        log = ChatLog()
        for i in range(50):
            log.append(
                ChatRecord(
                    time=float(i), initiator="a", partner="b", duration=1.0,
                    coresets_exchanged=False, psi_i=0.0, psi_j=0.0,
                    i_received=False, j_received=False, absorbed=0, aborted="x",
                )
            )
        assert len(log) == 50 and log.dropped == 0


class TestCityTraceWorld:
    def test_simulate_traces_propagates_city_fields(self):
        from repro.sim.traces import simulate_traces

        config = WorldConfig(
            map_size=600.0, grid_n=3, n_vehicles=3, n_background_cars=0,
            n_pedestrians=0, seed=13, min_route_length=100.0,
            city_blocks=2, shard_stepping=True, n_districts=4,
        )
        traces = simulate_traces(config, duration=5.0)
        assert traces.positions.shape[1] == 3
        assert np.all(np.isfinite(traces.positions))
