"""Unit tests for packet-level transfer simulation."""

import pytest

from repro.net import ChannelConfig, WirelessModel, simulate_transfer
from repro.net.channel import transfer_time_lossless

CONFIG = ChannelConfig()


class TestLosslessTime:
    def test_zero_bytes_instant(self):
        assert transfer_time_lossless(0, CONFIG) == 0.0

    def test_packetization_rounds_up(self):
        one = transfer_time_lossless(1, CONFIG)
        full = transfer_time_lossless(1500, CONFIG)
        assert one == full

    def test_52mb_takes_tens_of_seconds(self):
        # The paper's headline: a 52 MB model at 31 Mbps takes ~13-14 s.
        t = transfer_time_lossless(52 * 1024 * 1024, CONFIG)
        assert 12.0 < t < 16.0

    def test_coreset_under_half_second(self):
        # §IV-A: a 0.6 MB coreset transmits in < 0.5 s.
        t = transfer_time_lossless(0.6 * 1024 * 1024, CONFIG)
        assert t < 0.5


class TestSimulateTransfer:
    def test_completes_on_clean_link(self):
        wireless = WirelessModel(enabled=False)
        result = simulate_transfer(
            1_000_000, lambda t: 50.0, wireless, CONFIG, 0.0, 100.0
        )
        assert result.completed
        assert result.elapsed == pytest.approx(1_000_000 / CONFIG.bytes_per_second, rel=0.01)

    def test_loss_slows_transfer(self):
        clean = simulate_transfer(
            2_000_000, lambda t: 10.0, WirelessModel(enabled=False), CONFIG, 0.0, 1e9
        )
        lossy = simulate_transfer(
            2_000_000, lambda t: 499.0, WirelessModel(), CONFIG, 0.0, 1e9
        )
        assert lossy.completed
        assert lossy.elapsed > clean.elapsed * 3

    def test_deadline_cuts_transfer(self):
        wireless = WirelessModel(enabled=False)
        needed = 10_000_000 / CONFIG.bytes_per_second
        result = simulate_transfer(
            10_000_000, lambda t: 50.0, wireless, CONFIG, 0.0, needed / 2
        )
        assert not result.completed
        assert result.bytes_delivered < 10_000_000

    def test_out_of_range_aborts(self):
        wireless = WirelessModel()

        def distance(t):
            return 100.0 if t < 1.0 else 1000.0  # drives away after 1 s

        result = simulate_transfer(50_000_000, distance, wireless, CONFIG, 0.0, 100.0)
        assert not result.completed
        assert result.elapsed <= 1.5

    def test_zero_bytes_trivially_complete(self):
        result = simulate_transfer(0, lambda t: 50.0, WirelessModel(), CONFIG, 0.0, 1.0)
        assert result.completed and result.elapsed == 0.0

    def test_absolute_time_offsets_respected(self):
        wireless = WirelessModel()
        seen = []

        def distance(t):
            seen.append(t)
            return 50.0

        simulate_transfer(1000, distance, wireless, CONFIG, start_time=42.0, deadline=50.0)
        assert all(t >= 42.0 for t in seen)
