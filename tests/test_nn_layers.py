"""Unit tests for nn layers, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn import Conv2d, Flatten, Linear, ReLU, Sequential, Tanh
from repro.nn.params import get_flat_params, num_params, set_flat_params


def numeric_grad(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = np.zeros_like(flat, dtype=np.float64)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        out[i] = (hi - lo) / (2 * eps)
    return out.reshape(x.shape)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(np.ones((5, 4), dtype=np.float32))
        assert out.shape == (5, 3)

    def test_input_gradient_matches_numeric(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4)).astype(np.float64)

        def loss():
            return layer.forward(x).sum()

        grad_num = numeric_grad(loss, x)
        layer.forward(x)
        grad = layer.backward(np.ones((2, 3)))
        assert np.allclose(grad, grad_num, atol=1e-3)

    def test_weight_gradient_matches_numeric(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)

        def loss():
            return float(layer.forward(x).sum())

        grad_num = numeric_grad(loss, layer.weight.data)
        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((4, 2), dtype=np.float32))
        assert np.allclose(layer.weight.grad, grad_num, atol=1e-2)

    def test_bias_gradient_accumulates(self, rng):
        layer = Linear(2, 2, rng)
        x = np.ones((3, 2), dtype=np.float32)
        layer.forward(x)
        layer.backward(np.ones((3, 2), dtype=np.float32))
        layer.forward(x)
        layer.backward(np.ones((3, 2), dtype=np.float32))
        assert np.allclose(layer.bias.grad, 6.0)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng).backward(np.ones((1, 2)))

    def test_input_mutated_between_forward_and_backward(self, rng):
        # Training loops legally refill their batch buffer between
        # forward and backward; the layer must not read the caller's
        # (possibly overwritten) array in backward.
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        pristine = x.copy()
        layer.zero_grad()
        layer.forward(x)
        x[...] = 999.0  # caller reuses its buffer
        layer.backward(np.ones((4, 2), dtype=np.float32))
        corrupted_grad = layer.weight.grad.copy()
        layer.zero_grad()
        layer.forward(pristine)
        layer.backward(np.ones((4, 2), dtype=np.float32))
        assert np.array_equal(corrupted_grad, layer.weight.grad)

    def test_read_only_input_aliased_not_copied(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        x.flags.writeable = False
        layer.forward(x)
        assert layer._input is x


class TestConv2d:
    def test_output_shape_valid_padding(self, rng):
        conv = Conv2d(2, 4, 3, rng)
        out = conv.forward(rng.normal(size=(2, 2, 8, 8)).astype(np.float32))
        assert out.shape == (2, 4, 6, 6)

    def test_matches_manual_convolution(self, rng):
        conv = Conv2d(1, 1, 2, rng)
        x = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = conv.forward(x)
        w = conv.weight.data[0, 0]
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i : i + 2, j : j + 2] * w).sum()
        assert np.allclose(out[0, 0], expected + conv.bias.data[0], atol=1e-5)

    def test_input_gradient_matches_numeric(self, rng):
        conv = Conv2d(1, 2, 3, rng)
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float64)

        def loss():
            return float(conv.forward(x).sum())

        grad_num = numeric_grad(loss, x)
        conv.forward(x)
        grad = conv.backward(np.ones((1, 2, 3, 3)))
        assert np.allclose(grad, grad_num, atol=1e-3)

    def test_weight_gradient_matches_numeric(self, rng):
        conv = Conv2d(1, 1, 2, rng)
        x = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)

        def loss():
            return float(conv.forward(x).sum())

        grad_num = numeric_grad(loss, conv.weight.data)
        conv.zero_grad()
        conv.forward(x)
        conv.backward(np.ones((2, 1, 3, 3), dtype=np.float32))
        assert np.allclose(conv.weight.grad, grad_num, atol=1e-2)

    def test_input_mutated_between_forward_and_backward(self, rng):
        conv = Conv2d(1, 2, 3, rng)
        x = rng.normal(size=(2, 1, 5, 5)).astype(np.float32)
        pristine = x.copy()
        conv.zero_grad()
        conv.forward(x)
        x[...] = 999.0  # caller reuses its buffer
        conv.backward(np.ones((2, 2, 3, 3), dtype=np.float32))
        corrupted_grad = conv.weight.grad.copy()
        conv.zero_grad()
        conv.forward(pristine)
        conv.backward(np.ones((2, 2, 3, 3), dtype=np.float32))
        assert np.array_equal(corrupted_grad, conv.weight.grad)


class TestActivations:
    def test_relu_masks_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]

    def test_tanh_gradient_matches_numeric(self):
        tanh = Tanh()
        x = np.array([[0.3, -0.7]])

        def loss():
            return float(np.tanh(x).sum())

        grad_num = numeric_grad(loss, x)
        tanh.forward(x)
        grad = tanh.backward(np.ones_like(x))
        assert np.allclose(grad, grad_num, atol=1e-5)


class TestFlattenSequential:
    def test_flatten_roundtrip(self):
        flatten = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = flatten.forward(x)
        assert out.shape == (2, 12)
        back = flatten.backward(out)
        assert back.shape == x.shape

    def test_sequential_composes(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        out = net.forward(rng.normal(size=(3, 4)).astype(np.float32))
        assert out.shape == (3, 2)

    def test_sequential_parameters_collected(self, rng):
        net = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert num_params(net) == 4 * 8 + 8 + 8 * 2 + 2

    def test_sequential_gradient_matches_numeric(self, rng):
        net = Sequential(Linear(3, 4, rng), Tanh(), Linear(4, 1, rng))
        x = rng.normal(size=(2, 3)).astype(np.float64)

        def loss():
            return float(net.forward(x).sum())

        grad_num = numeric_grad(loss, x)
        net.forward(x)
        grad = net.backward(np.ones((2, 1)))
        assert np.allclose(grad, grad_num, atol=1e-3)


class TestFlatParams:
    def test_roundtrip(self, rng):
        net = Sequential(Linear(3, 4, rng), Linear(4, 2, rng))
        flat = get_flat_params(net)
        set_flat_params(net, flat * 2.0)
        assert np.allclose(get_flat_params(net), flat * 2.0)

    def test_wrong_size_rejected(self, rng):
        net = Sequential(Linear(3, 4, rng))
        with pytest.raises(ValueError):
            set_flat_params(net, np.zeros(5))
