"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.nn import (
    fleet_waypoint_l1,
    l1_loss,
    mse_loss,
    softmax_cross_entropy,
    waypoint_l1,
)


class TestMse:
    def test_zero_for_perfect_prediction(self):
        x = np.ones((3, 4))
        per, grad = mse_loss(x, x)
        assert np.allclose(per, 0.0)
        assert np.allclose(grad, 0.0)

    def test_per_sample_values(self):
        pred = np.array([[1.0, 1.0], [0.0, 0.0]])
        target = np.zeros((2, 2))
        per, _ = mse_loss(pred, target)
        assert per.tolist() == [1.0, 0.0]

    def test_gradient_is_batch_mean(self):
        pred = np.array([[2.0], [4.0]])
        target = np.zeros((2, 1))
        _, grad = mse_loss(pred, target)
        # d/dpred of mean((pred-target)^2) over batch*features
        assert np.allclose(grad, [[2.0], [4.0]])


class TestL1:
    def test_per_sample(self):
        pred = np.array([[1.0, -1.0], [0.5, 0.5]])
        per, _ = l1_loss(pred, np.zeros((2, 2)))
        assert per.tolist() == [1.0, 0.5]

    def test_gradient_signs(self):
        pred = np.array([[2.0, -3.0]])
        _, grad = l1_loss(pred, np.zeros((1, 2)))
        assert np.sign(grad).tolist() == [[1.0, -1.0]]


class TestWaypointL1:
    def test_unweighted_matches_mean(self):
        pred = np.array([[1.0, 1.0], [3.0, 3.0]])
        target = np.zeros((2, 2))
        scalar, per, _ = waypoint_l1(pred, target)
        assert per.tolist() == [1.0, 3.0]
        assert scalar == pytest.approx(2.0)

    def test_weights_shift_scalar(self):
        pred = np.array([[1.0, 1.0], [3.0, 3.0]])
        target = np.zeros((2, 2))
        scalar, _, _ = waypoint_l1(pred, target, weights=np.array([3.0, 1.0]))
        assert scalar == pytest.approx((3 * 1 + 1 * 3) / 4)

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError):
            waypoint_l1(np.ones((1, 2)), np.zeros((1, 2)), weights=np.array([0.0]))

    def test_gradient_respects_weights(self):
        pred = np.array([[1.0], [1.0]])
        target = np.zeros((2, 1))
        _, _, grad = waypoint_l1(pred, target, weights=np.array([1.0, 0.0]))
        assert grad[1, 0] == 0.0
        assert grad[0, 0] > 0.0

    def test_descent_reduces_loss(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(8, 6)).astype(np.float32)
        target = np.zeros((8, 6), dtype=np.float32)
        scalar0, _, grad = waypoint_l1(pred, target)
        scalar1, _, _ = waypoint_l1(pred - 0.5 * np.sign(grad) * 0.1, target)
        assert scalar1 < scalar0


class TestWaypointL1Dtype:
    def test_float32_end_to_end(self):
        # The driving model is float32 throughout; the loss must not
        # silently upcast the per-sample vector or the gradient even
        # when the caller passes float64 weights.
        pred = np.ones((4, 6), dtype=np.float32)
        target = np.zeros((4, 6), dtype=np.float32)
        weights = np.array([1.0, 2.0, 1.0, 0.5])  # float64 on purpose
        _, per_sample, grad = waypoint_l1(pred, target, weights=weights)
        assert per_sample.dtype == np.float32
        assert grad.dtype == np.float32
        _, per_unweighted, grad_unweighted = waypoint_l1(pred, target)
        assert per_unweighted.dtype == np.float32
        assert grad_unweighted.dtype == np.float32


class TestFleetWaypointL1:
    def test_matches_per_node_loss(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(3, 5, 6)).astype(np.float32)
        target = rng.normal(size=(3, 5, 6)).astype(np.float32)
        weights = rng.uniform(0.5, 2.0, size=(3, 5)).astype(np.float32)
        scalars, per_sample, grad = fleet_waypoint_l1(pred, target, weights)
        for row in range(3):
            scalar, per, g = waypoint_l1(pred[row], target[row], weights[row])
            assert scalars[row] == pytest.approx(scalar, rel=1e-6)
            np.testing.assert_array_equal(per_sample[row], per)
            np.testing.assert_array_equal(grad[row], g)

    def test_float32_end_to_end(self):
        pred = np.ones((2, 3, 4), dtype=np.float32)
        target = np.zeros((2, 3, 4), dtype=np.float32)
        scalars, per_sample, grad = fleet_waypoint_l1(pred, target)
        assert scalars.dtype == np.float32
        assert per_sample.dtype == np.float32
        assert grad.dtype == np.float32

    def test_shared_target_broadcasts(self):
        pred = np.ones((2, 3, 4), dtype=np.float32)
        target = np.zeros((3, 4), dtype=np.float32)
        scalars, _, grad = fleet_waypoint_l1(pred, target)
        assert scalars.shape == (2,)
        assert grad.shape == pred.shape

    def test_zero_weight_sum_rejected_per_node(self):
        pred = np.ones((2, 2, 2), dtype=np.float32)
        target = np.zeros((2, 2, 2), dtype=np.float32)
        weights = np.array([[1.0, 1.0], [0.0, 0.0]], dtype=np.float32)
        with pytest.raises(ValueError):
            fleet_waypoint_l1(pred, target, weights)


class TestCrossEntropy:
    def test_perfect_logits_near_zero_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        per, _ = softmax_cross_entropy(logits, labels)
        assert np.all(per < 1e-4)

    def test_uniform_logits_log_k(self):
        logits = np.zeros((1, 4))
        per, _ = softmax_cross_entropy(logits, np.array([2]))
        assert per[0] == pytest.approx(np.log(4))

    def test_gradient_sums_to_zero_over_classes(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        _, grad = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-9)
