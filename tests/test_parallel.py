"""Tests for the process-parallel experiment engine (repro.parallel).

Covers the contracts ISSUE-level callers rely on: specs/results pickle
cleanly, a pool returns bit-identical results to the serial path, worker
crashes retry and then degrade to in-parent execution without losing
completed results, and worker telemetry merges back into the parent's
registry.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.configs import CI
from repro.experiments.multiseed import SeedSummary, run_seeds
from repro.experiments.runner import RunSpec, build_context, run_method
from repro.parallel import ParallelConfig, resolve_jobs, run_specs
from repro.parallel.worker import CRASH_FLAG_ENV, CRASH_HARD_ENV, CRASH_METHOD_ENV
from repro.sim.world import WorldConfig

TINY = replace(
    CI,
    name="parallel-test",
    world=WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=3,
        n_background_cars=0,
        n_pedestrians=0,
        seed=7,
        min_route_length=120.0,
    ),
    collect_duration=30.0,
    trace_duration=120.0,
    train_duration=40.0,
    train_interval=2.0,
    record_interval=10.0,
    coreset_size=6,
    eval_trials=1,
    eval_models=1,
    eval_normal_cars=0,
    eval_normal_pedestrians=0,
)


@pytest.fixture(scope="module")
def context():
    return build_context(TINY)


def tiny_specs(context, methods=("LbChat", "DP"), seeds=(1, 2)):
    return [
        RunSpec.for_context(context, method, wireless=True, seed=seed)
        for method in methods
        for seed in seeds
    ]


def assert_results_identical(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.method == right.method and left.seed == right.seed
        assert left.receive_attempted == right.receive_attempted
        assert left.receive_completed == right.receive_completed
        assert np.array_equal(left.loss_curve(9)[1], right.loss_curve(9)[1])
        assert left.counters == right.counters
        for node_l, node_r in zip(left.nodes, right.nodes):
            assert np.array_equal(node_l.flat_params, node_r.flat_params)


class TestConfig:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_empty_specs(self):
        assert run_specs([], jobs=4) == []


class TestPickling:
    def test_run_spec_round_trip(self, context):
        spec = RunSpec.for_context(
            context, "LbChat", seed=3, coreset_size=4, overrides={"lambda_c": 0.5}
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.overrides == {"lambda_c": 0.5}

    def test_run_result_round_trip(self, context):
        spec = RunSpec.for_context(context, "LbChat", seed=1)
        result = run_method(context, spec)
        assert result.trainer is not None  # serial path keeps the trainer
        clone = pickle.loads(pickle.dumps(result))
        assert clone.trainer is None  # dropped: not picklable, not needed
        assert clone.method == result.method
        assert clone.receive_attempted == result.receive_attempted
        assert np.array_equal(clone.loss_curve(9)[1], result.loss_curve(9)[1])
        assert [n.node_id for n in clone.nodes] == [n.node_id for n in result.nodes]

    def test_seed_summary_round_trip(self):
        summary = SeedSummary(
            method="LbChat",
            seeds=[1, 2],
            grid=np.linspace(0, 40, 5),
            curves=np.ones((2, 5)),
            receive_rates=np.array([0.5, 0.75]),
        )
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.method == summary.method
        assert np.array_equal(clone.curves, summary.curves)


class TestDeterminism:
    def test_pool_matches_serial(self, context):
        specs = tiny_specs(context)
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert_results_identical(serial, parallel)

    def test_run_seeds_parallel_matches_serial(self, context):
        serial = run_seeds(context, "LbChat", seeds=[1, 2], n_points=9, jobs=1)
        parallel = run_seeds(context, "LbChat", seeds=[1, 2], n_points=9, jobs=2)
        assert np.array_equal(serial.curves, parallel.curves)
        assert np.array_equal(serial.receive_rates, parallel.receive_rates)

    def test_parallel_config_object_accepted(self, context):
        specs = tiny_specs(context, methods=("DP",), seeds=(1,))
        config = ParallelConfig(jobs=2, retries=0)
        assert_results_identical(run_specs(specs, config), run_specs(specs, jobs=1))


class TestFailurePolicy:
    def test_crash_once_retries(self, context, monkeypatch, tmp_path):
        flag = tmp_path / "crash-once"
        flag.touch()
        monkeypatch.setenv(CRASH_METHOD_ENV, "LbChat")
        monkeypatch.setenv(CRASH_FLAG_ENV, str(flag))
        specs = tiny_specs(context)
        parallel = run_specs(specs, jobs=2, retries=2)
        assert not flag.exists()  # the injected crash fired exactly once
        monkeypatch.delenv(CRASH_METHOD_ENV)
        monkeypatch.delenv(CRASH_FLAG_ENV)
        assert_results_identical(run_specs(specs, jobs=1), parallel)

    def test_retries_exhausted_falls_back_to_serial(self, context, monkeypatch):
        # Every worker attempt dies; the parent must still produce every
        # result (the crash hook never fires on the in-parent path).
        monkeypatch.setenv(CRASH_METHOD_ENV, "LbChat")
        specs = tiny_specs(context)
        parallel = run_specs(specs, jobs=2, retries=1)
        monkeypatch.delenv(CRASH_METHOD_ENV)
        assert_results_identical(run_specs(specs, jobs=1), parallel)

    def test_hard_crash_recycles_broken_pool(self, context, monkeypatch, tmp_path):
        flag = tmp_path / "crash-hard-once"
        flag.touch()
        monkeypatch.setenv(CRASH_METHOD_ENV, "DP")
        monkeypatch.setenv(CRASH_FLAG_ENV, str(flag))
        monkeypatch.setenv(CRASH_HARD_ENV, "1")
        specs = tiny_specs(context)
        parallel = run_specs(specs, jobs=2, retries=2)
        for name in (CRASH_METHOD_ENV, CRASH_FLAG_ENV, CRASH_HARD_ENV):
            monkeypatch.delenv(name)
        assert_results_identical(run_specs(specs, jobs=1), parallel)

    def test_timeout_degrades_to_serial(self, context):
        # An absurdly small per-job timeout makes every pool attempt
        # "hang"; the jobs must still complete in the parent.
        specs = tiny_specs(context, methods=("DP",), seeds=(1, 2))
        timed_out = run_specs(specs, jobs=2, timeout=0.001, retries=1)
        assert_results_identical(run_specs(specs, jobs=1), timed_out)


class TestTelemetryMerge:
    def test_worker_registries_merge_into_parent(self, context):
        from repro.telemetry import TelemetrySession

        specs = tiny_specs(context)
        serial_session = TelemetrySession(label="serial")
        with serial_session:
            serial = run_specs(specs, jobs=1)
        parallel_session = TelemetrySession(label="parallel")
        with parallel_session:
            parallel = run_specs(specs, jobs=2)
        assert_results_identical(serial, parallel)
        # Both paths wrap each run in a private session and merge its
        # state in job order, so the full registries agree exactly.
        serial_state = serial_session.registry.state()
        parallel_state = parallel_session.registry.state()
        assert parallel_state["counters"] == serial_state["counters"]
        assert parallel_state["histograms"] == serial_state["histograms"]
        assert parallel_state["gauges"] == serial_state["gauges"]

    def test_single_spec_records_spans_directly(self, context):
        from repro.telemetry import TelemetrySession

        spec = RunSpec.for_context(context, "LbChat", seed=1)
        with TelemetrySession(label="single") as session:
            run_specs([spec], jobs=1)
        # `repro trace` depends on the single-run path keeping tracer
        # spans in the caller's session.
        assert session.tracer.span_counts().get("trainer_run") == 1
