"""Tests for the scripted stress-test scenarios.

A "perfect" scripted model (waypoints straight ahead, braking when the
BEV shows an obstacle in its path) must pass; a blind full-speed model
must fail the hazard scenarios; a frozen model must fail the sprint.
"""

import numpy as np
import pytest

from repro.sim.scenarios import (
    SCENARIOS,
    empty_sprint,
    lead_vehicle_stop,
    pedestrian_crossing,
)
from tests.conftest import BEV_SPEC, N_WAYPOINTS


class ScriptedModel:
    """Waypoints straight ahead; slows if anything occupies the path.

    Reads the BEV's vehicle/pedestrian channels in the forward corridor
    and compresses the predicted waypoints accordingly — a hand-coded
    stand-in for a well-trained WaypointNet.
    """

    def __init__(self, cruise_hop=4.0, careful_hop=0.2):
        self.cruise_hop = cruise_hop
        self.careful_hop = careful_hop

    def forward(self, bev, commands):
        batch = bev.shape[0]
        out = np.zeros((batch, 2 * N_WAYPOINTS), dtype=np.float32)
        for i in range(batch):
            hop = self.cruise_hop
            # Forward corridor: rows ahead of the ego, center columns.
            grid = BEV_SPEC.grid
            ego_row = int(BEV_SPEC.back_fraction * grid)
            corridor = slice(grid // 2 - 2, grid // 2 + 2)
            ahead = slice(ego_row, min(ego_row + 5, grid))
            blocked = (
                bev[i, 2, ahead, corridor].sum() + bev[i, 3, ahead, corridor].sum()
            )
            if blocked > 0:
                hop = self.careful_hop
            for w in range(N_WAYPOINTS):
                out[i, 2 * w] = hop * (w + 1)
        return out


class BlindModel(ScriptedModel):
    """Never slows down, no matter what the BEV shows."""

    def forward(self, bev, commands):
        saved = bev.copy()
        bev = bev.copy()
        bev[:, 2:4] = 0.0  # blind to agents
        return super().forward(bev, commands)


class FrozenModel:
    """Predicts zero motion."""

    def forward(self, bev, commands):
        return np.zeros((bev.shape[0], 2 * N_WAYPOINTS), dtype=np.float32)


class TestPedestrianCrossing:
    def test_scripted_model_passes(self, town):
        result = pedestrian_crossing(town, ScriptedModel(), BEV_SPEC)
        assert result.passed, result
        assert result.min_gap > 1.6

    def test_blind_model_fails_or_grazes(self, town):
        result = pedestrian_crossing(town, BlindModel(), BEV_SPEC)
        # A blind speeder gets much closer to the pedestrian than the
        # careful model; depending on timing it collides outright.
        careful = pedestrian_crossing(town, ScriptedModel(), BEV_SPEC)
        assert (not result.passed) or result.min_gap <= careful.min_gap + 1.0


class TestLeadVehicleStop:
    def test_scripted_model_passes(self, town):
        result = lead_vehicle_stop(town, ScriptedModel(), BEV_SPEC)
        assert result.passed, result

    def test_blind_model_rear_ends(self, town):
        result = lead_vehicle_stop(town, BlindModel(), BEV_SPEC)
        assert not result.passed
        assert result.reason in ("collision", "timeout", "off_road")


class TestEmptySprint:
    def test_scripted_model_passes(self, town):
        result = empty_sprint(town, ScriptedModel(), BEV_SPEC)
        assert result.passed, result

    def test_frozen_model_fails(self, town):
        result = empty_sprint(town, FrozenModel(), BEV_SPEC)
        assert not result.passed
        assert result.reason in ("timeout", "too_slow")


class TestRegistry:
    def test_all_scenarios_callable(self, town):
        for name, fn in SCENARIOS.items():
            result = fn(town, ScriptedModel(), BEV_SPEC, duration=30.0)
            assert result.reason in ("success", "collision", "off_road", "timeout", "too_slow")
